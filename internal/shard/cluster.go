package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
	"ooc/internal/rtrace"
	"ooc/internal/sim"
	"ooc/internal/trace"
)

// Config configures a Cluster.
type Config struct {
	// Endpoints are the per-processor network handles — netsim nodes or
	// TCP transports. Their count fixes the cluster size; every shard's
	// group replicates across all of them.
	Endpoints []msgnet.Endpoint
	// Desc is the shard map. Zero value means SplitEven(Shards,
	// DefaultSlots).
	Desc Descriptor
	// Shards is the group count when Desc is zero. Default 1.
	Shards int
	// RNG seeds every group's election timers and client jitter;
	// required, and the reason two same-seeded clusters elect the same
	// leaders.
	RNG *sim.RNG
	// Raft timing and pipeline knobs, passed through to every node.
	// Zero values take the raft.Config defaults.
	ElectionTimeout     time.Duration
	HeartbeatInterval   time.Duration
	LeaseDuration       time.Duration
	MaxEntriesPerAppend int
	MaxInflightAppends  int
	MaxProposalBatch    int
	// ReadMode is the default consistency Get uses (zero =
	// ReadLinearizable).
	ReadMode raft.ReadConsistency
	// SyncPipeline, passed through to every node, restores the fully
	// ordered single-goroutine write path (raft.Config.SyncPipeline) —
	// the setting the determinism suites run under.
	SyncPipeline bool
	// ClientBackoff is each group client's base retry pause (default
	// 1ms — the closed-loop benchmark setting).
	ClientBackoff time.Duration
	// Storage, if non-nil, supplies each (node, shard) replica's
	// persistence; nil runs every group unpersisted.
	Storage func(node, shard int) (raft.Storage, error)
	// PerGroupFsync disables cross-group sync coalescing, restoring the
	// pre-PR10 baseline where every group's flush pays its own device
	// barrier (serialized at the shared Disk when DeviceLatency > 0).
	// The zero value coalesces: each node runs one raft.SyncCoalescer
	// under all of its groups, so K concurrent group flushes share one
	// barrier. Only meaningful with Storage set.
	PerGroupFsync bool
	// DeviceLatency, when > 0, models each node's shared storage device:
	// every durability barrier on the node — from any group — pays this
	// latency through one raft.Disk, and concurrent barriers serialize
	// there. This is the E18 fixture (one disk per node, not one per
	// group — contrast raft.SlowDisk). Zero models no device.
	DeviceLatency time.Duration
	// Recorder, if non-nil, has every replica's storage emit one trace
	// note per durability flush ("fsync <channel> entries=E width=W"),
	// which ooctrace folds into per-shard fsyncs_per_op and
	// barrier-width columns in the mux-channel table. Only meaningful
	// with Storage set.
	Recorder *trace.Recorder
	// StateMachine supplies each (node, shard) replica's state machine;
	// nil means a fresh raft.KVStore. The front end requires whatever it
	// returns to implement raft.KVGetter for reads.
	StateMachine func(node, shard int) raft.StateMachine
	// Metrics, if non-nil, receives the cluster-level telemetry: leader
	// placement gauges and move counters per shard (the label
	// dimension), rebalance nudges, routed ops per shard, and mux
	// backlog drops.
	Metrics *metrics.Registry
	// ShardMetrics, if non-nil, supplies a private registry per shard;
	// the shard's raft nodes are instrumented against it, so benchmark
	// tables can snapshot each group's internals separately (the raft_*
	// metric names carry no shard label — separate registries keep the
	// attribution clean).
	ShardMetrics func(shard int) *metrics.Registry
	// MuxOptions are applied to every node's mux (backlog limits; the
	// drop counter is wired to Metrics automatically).
	MuxOptions []msgnet.MuxOption
	// Tracer, if non-nil, samples per-request spans across the whole
	// stack: every group's client opens spans (raft.WithClientTracer)
	// and every raft node attributes queue/fsync/network/apply phases
	// into them (raft.Config.Tracer).
	Tracer *rtrace.Tracer
	// Flights, if non-nil, holds one flight recorder per node (indexed
	// like Endpoints; short or nil-holed slices are fine). Each node's
	// raft replicas record into it, and its mux's backlog drops trigger
	// an EvMuxDrop dump with the channel and sender attached.
	Flights []*rtrace.Flight
}

// Group is one shard's consensus group: a raft node per processor plus
// the client the front end routes through.
type Group struct {
	Shard  int
	Nodes  []*raft.Node
	Client *raft.Client
	sms    []raft.StateMachine
}

// StateMachine returns the group's replica state machine on one node.
func (g *Group) StateMachine(node int) raft.StateMachine { return g.sms[node] }

// clusterMetrics is the per-shard label dimension over the cluster
// registry. Instruments are registered once here; nil receivers (no
// registry) discard.
type clusterMetrics struct {
	leader   []*metrics.Gauge   // shard_leader{shard=s}: node id, -1 unknown
	moves    []*metrics.Counter // shard_leader_moves_total{shard=s}
	puts     []*metrics.Counter // shard_puts_total{shard=s}
	gets     []*metrics.Counter // shard_gets_total{shard=s}
	deletes  []*metrics.Counter // shard_deletes_total{shard=s}
	rebal    *metrics.Counter   // shard_rebalance_nudges_total
	misroute *metrics.Counter   // shard_router_rejects_total (defensive)
}

func newClusterMetrics(reg *metrics.Registry, shards int) *clusterMetrics {
	cm := &clusterMetrics{
		leader:  make([]*metrics.Gauge, shards),
		moves:   make([]*metrics.Counter, shards),
		puts:    make([]*metrics.Counter, shards),
		gets:    make([]*metrics.Counter, shards),
		deletes: make([]*metrics.Counter, shards),
	}
	if reg == nil {
		return cm
	}
	for s := 0; s < shards; s++ {
		id := strconv.Itoa(s)
		cm.leader[s] = reg.Gauge(metrics.Label("shard_leader", "shard", id))
		cm.leader[s].Set(-1)
		cm.moves[s] = reg.Counter(metrics.Label("shard_leader_moves_total", "shard", id))
		cm.puts[s] = reg.Counter(metrics.Label("shard_ops_total", "shard", id, "op", "put"))
		cm.gets[s] = reg.Counter(metrics.Label("shard_ops_total", "shard", id, "op", "get"))
		cm.deletes[s] = reg.Counter(metrics.Label("shard_ops_total", "shard", id, "op", "delete"))
	}
	cm.rebal = reg.Counter("shard_rebalance_nudges_total")
	cm.misroute = reg.Counter("shard_router_rejects_total")
	return cm
}

// Cluster is S consensus groups over N processors, with a router in
// front. Build with NewCluster, run with Start, then use the KV surface
// (Put/Delete/Get) or reach into Group for protocol-level access.
type Cluster struct {
	cfg     Config
	desc    Descriptor
	n       int
	muxes   []*msgnet.Mux
	groups  []*Group
	met     *clusterMetrics
	syncers []*raft.SyncCoalescer // one per node when Storage is set

	mu      sync.Mutex
	leader  []int // current leader node per shard; -1 unknown
	leads   []int // shards currently led, per node
	nudges  int   // rebalance campaigns requested
	started bool
	running []*raft.Node // nodes Start actually launched, for Wait
}

// NewCluster validates cfg and sizes the cluster; Start runs it.
func NewCluster(cfg Config) (*Cluster, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("shard: Config.Endpoints is required")
	}
	if cfg.RNG == nil {
		return nil, errors.New("shard: Config.RNG is required")
	}
	desc := cfg.Desc
	if desc.Slots == 0 && len(desc.Ranges) == 0 {
		shards := cfg.Shards
		if shards < 1 {
			shards = 1
		}
		desc = SplitEven(shards, DefaultSlots)
	}
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClientBackoff <= 0 {
		cfg.ClientBackoff = time.Millisecond
	}
	shards := desc.NumShards()
	c := &Cluster{
		cfg:    cfg,
		desc:   desc,
		n:      len(cfg.Endpoints),
		groups: make([]*Group, shards),
		met:    newClusterMetrics(cfg.Metrics, shards),
		leader: make([]int, shards),
		leads:  make([]int, len(cfg.Endpoints)),
	}
	for s := range c.leader {
		c.leader[s] = -1
	}
	return c, nil
}

// Descriptor returns the cluster's shard map.
func (c *Cluster) Descriptor() Descriptor { return c.desc }

// NumShards returns the group count.
func (c *Cluster) NumShards() int { return len(c.groups) }

// NumNodes returns the processor count.
func (c *Cluster) NumNodes() int { return c.n }

// ShardOf routes a key to its owning shard.
func (c *Cluster) ShardOf(key string) int { return c.desc.ShardOf(key) }

// Group returns shard s's consensus group (valid after Start).
func (c *Cluster) Group(s int) *Group { return c.groups[s] }

// PreferredLeader is the boot placement hint: shard s's leadership
// belongs on node s mod N, spreading the write load (each leader owns
// its group's fsync queue and outbound replication) round-robin across
// processors.
func (c *Cluster) PreferredLeader(s int) int { return s % c.n }

// Start builds one mux per processor, one raft node per (processor,
// shard) on the shard's channel, starts everything, and nudges each
// shard's preferred leader to campaign. It returns once all nodes are
// running; leadership settles asynchronously (WaitForLeaders).
func (c *Cluster) Start(ctx context.Context) error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return errors.New("shard: cluster already started")
	}
	c.started = true
	c.mu.Unlock()

	muxOpts := append([]msgnet.MuxOption{msgnet.WithMuxMetrics(c.cfg.Metrics)}, c.cfg.MuxOptions...)
	c.muxes = make([]*msgnet.Mux, c.n)
	for id := 0; id < c.n; id++ {
		opts := muxOpts
		if fl := c.flightFor(id); fl != nil {
			// A backlog drop is an anomaly worth a dump: record which
			// channel lost a message and who sent it (ISSUE 8 satellite).
			opts = append(append([]msgnet.MuxOption(nil), muxOpts...),
				msgnet.WithMuxDropHook(func(channel string, from int) {
					fl.Trigger(rtrace.EvMuxDrop, 0, int64(from), 0, channel)
				}))
		}
		c.muxes[id] = msgnet.NewMux(ctx, c.cfg.Endpoints[id], opts...)
	}
	if c.cfg.Storage != nil {
		// One syncer per node, shared by all of the node's groups: this
		// is the whole point of the shard-layer wiring — K groups, one
		// durability pipeline. Each node also gets its own Disk: devices
		// are per-node, so barriers on different nodes never serialize
		// against each other.
		c.syncers = make([]*raft.SyncCoalescer, c.n)
		for id := 0; id < c.n; id++ {
			c.syncers[id] = raft.NewSyncCoalescer(raft.SyncerConfig{
				Disk:     raft.NewDisk(c.cfg.DeviceLatency),
				PerGroup: c.cfg.PerGroupFsync,
				Metrics:  c.cfg.Metrics,
				Node:     id,
			})
		}
	}
	for s := range c.groups {
		g := &Group{
			Shard: s,
			Nodes: make([]*raft.Node, c.n),
			sms:   make([]raft.StateMachine, c.n),
		}
		var reg *metrics.Registry
		if c.cfg.ShardMetrics != nil {
			reg = c.cfg.ShardMetrics(s)
		}
		for id := 0; id < c.n; id++ {
			sm := raft.StateMachine(nil)
			if c.cfg.StateMachine != nil {
				sm = c.cfg.StateMachine(id, s)
			}
			if sm == nil {
				sm = &raft.KVStore{}
			}
			g.sms[id] = sm
			var store raft.Storage
			var syncer *raft.SyncCoalescer
			if c.cfg.Storage != nil {
				st, err := c.cfg.Storage(id, s)
				if err != nil {
					return fmt.Errorf("shard %d node %d storage: %w", s, id, err)
				}
				store = st
				if store != nil && c.cfg.Recorder != nil {
					store = &noteStorage{inner: store, rec: c.cfg.Recorder, node: id, channel: ChannelName(s)}
				}
				syncer = c.syncers[id]
			}
			node, err := raft.NewNode(raft.Config{
				ID:                  id,
				Endpoint:            c.muxes[id].Channel(ChannelName(s)),
				RNG:                 c.cfg.RNG.Stream(nodeRole+uint64(s), uint64(id)),
				ElectionTimeout:     c.cfg.ElectionTimeout,
				HeartbeatInterval:   c.cfg.HeartbeatInterval,
				LeaseDuration:       c.cfg.LeaseDuration,
				StateMachine:        sm,
				Storage:             store,
				Metrics:             reg,
				Tracer:              c.cfg.Tracer,
				Flight:              c.flightFor(id),
				MaxEntriesPerAppend: c.cfg.MaxEntriesPerAppend,
				MaxInflightAppends:  c.cfg.MaxInflightAppends,
				MaxProposalBatch:    c.cfg.MaxProposalBatch,
				SyncPipeline:        c.cfg.SyncPipeline,
				Syncer:              syncer,
			})
			if err != nil {
				return fmt.Errorf("shard %d node %d: %w", s, id, err)
			}
			g.Nodes[id] = node
		}
		client, err := raft.NewClient(g.Nodes,
			raft.WithClientBackoff(c.cfg.ClientBackoff),
			raft.WithClientRNG(c.cfg.RNG.Stream(clientRole, uint64(s))),
			raft.WithReadConsistency(c.cfg.ReadMode),
			raft.WithClientTracer(c.cfg.Tracer))
		if err != nil {
			return fmt.Errorf("shard %d client: %w", s, err)
		}
		g.Client = client
		c.groups[s] = g
	}
	// Subscribe the placement watchers before starting any node so no
	// EventBecameLeader is missed, then start and place.
	for _, g := range c.groups {
		for id, node := range g.Nodes {
			go c.watchLeadership(ctx, g.Shard, id, node.Subscribe())
		}
	}
	for _, g := range c.groups {
		for _, node := range g.Nodes {
			node.Start(ctx)
			c.running = append(c.running, node)
		}
	}
	for _, g := range c.groups {
		g.Nodes[c.PreferredLeader(g.Shard)].Campaign(nil)
	}
	return nil
}

// Wait blocks until every node Start launched has fully stopped: main
// loop exited, persist and apply workers drained. Callers that own the
// groups' Storage (Config.Storage) must cancel the Start context and
// Wait before closing it — a pipelined node's persist worker writes
// until its Done() fires. Call after Start has returned.
func (c *Cluster) Wait() {
	for _, nd := range c.running {
		<-nd.Done()
	}
}

// Syncer returns node id's sync coalescer — the per-node durability
// pipeline all of the node's groups share. Nil when the cluster runs
// without Storage (valid after Start).
func (c *Cluster) Syncer(id int) *raft.SyncCoalescer {
	if id < len(c.syncers) {
		return c.syncers[id]
	}
	return nil
}

// flightFor returns node id's flight recorder, nil when none was
// configured for it.
func (c *Cluster) flightFor(id int) *rtrace.Flight {
	if id < len(c.cfg.Flights) {
		return c.cfg.Flights[id]
	}
	return nil
}

// RNG stream roles: keep the per-(shard,node) protocol streams, the
// per-shard client streams, and everything the caller forks from the
// same root in disjoint subspaces.
const (
	nodeRole   uint64 = 1 << 32
	clientRole uint64 = 2 << 32
)

// watchLeadership follows one replica's event stream and feeds leader
// transitions into the placement table.
func (c *Cluster) watchLeadership(ctx context.Context, shard, node int, sub *raft.Subscription) {
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			return
		}
		if ev.Kind == raft.EventBecameLeader {
			c.noteLeader(shard, node)
		}
	}
}

// noteLeader records a leader change and runs the rebalance check: if
// the new leader's node now leads more than its fair share of shards
// while the shard's preferred node leads less than its own, nudge the
// preferred node to campaign. One nudge per observed change, and only
// toward an underloaded preferred node, so placement converges instead
// of oscillating.
func (c *Cluster) noteLeader(shard, node int) {
	c.mu.Lock()
	old := c.leader[shard]
	if old == node {
		c.mu.Unlock()
		return
	}
	c.leader[shard] = node
	if old >= 0 {
		c.leads[old]--
	}
	c.leads[node]++
	c.met.leader[shard].Set(int64(node))
	c.met.moves[shard].Inc(node)
	fair := (len(c.groups) + c.n - 1) / c.n
	pref := c.PreferredLeader(shard)
	nudge := node != pref && c.leads[node] > fair && c.leads[pref] < fair
	if nudge {
		c.nudges++
	}
	c.mu.Unlock()
	if nudge {
		c.met.rebal.Inc(pref)
		c.groups[shard].Nodes[pref].Campaign(nil)
	}
}

// LeaderPlacement snapshots the current leader node per shard (-1
// unknown). It reads the watcher-maintained table, which trails the
// true raft state by event delivery only.
func (c *Cluster) LeaderPlacement() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.leader...)
}

// LeaderSpread counts distinct nodes currently leading at least one
// shard — the acceptance check that multi-Raft actually spread the
// write load.
func (c *Cluster) LeaderSpread() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	spread := 0
	for _, l := range c.leads {
		if l > 0 {
			spread++
		}
	}
	return spread
}

// RebalanceNudges reports how many rebalance campaigns the placement
// watcher has requested.
func (c *Cluster) RebalanceNudges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nudges
}

// WaitForLeaders blocks until every shard has an elected leader (per
// raft status, not just the watcher table) or ctx expires.
func (c *Cluster) WaitForLeaders(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("shard: waiting for leaders: %w", err)
		}
		ready := 0
		for _, g := range c.groups {
			for _, node := range g.Nodes {
				if node.Status().State == raft.Leader {
					ready++
					break
				}
			}
		}
		if ready == len(c.groups) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}
