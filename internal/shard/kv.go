package shard

import (
	"context"

	"ooc/internal/raft"
)

// Put routes a write to the key's owning group and blocks until it is
// committed and applied there (raft.Client.SubmitWait semantics). It
// returns the owning shard and the log index within that shard's group
// — indexes are per-group sequences, not a global order; cross-shard
// operations are independent, which is the entire point.
func (c *Cluster) Put(ctx context.Context, key, value string) (shard, index int, err error) {
	s := c.ShardOf(key)
	c.met.puts[s].Inc(s)
	idx, err := c.groups[s].Client.SubmitWait(ctx, raft.KVCommand{Op: "set", Key: key, Value: value})
	return s, idx, err
}

// Delete routes a deletion to the key's owning group, with Put's
// commit-and-apply semantics.
func (c *Cluster) Delete(ctx context.Context, key string) (shard, index int, err error) {
	s := c.ShardOf(key)
	c.met.deletes[s].Inc(s)
	idx, err := c.groups[s].Client.SubmitWait(ctx, raft.KVCommand{Op: "delete", Key: key})
	return s, idx, err
}

// Get routes a read to the key's owning group using the cluster's
// default read consistency. Each shard runs the single-group read fast
// path independently: linearizable reads confirm leadership within the
// owning group only, lease reads ride that group's leader lease.
// Per-key reads therefore stay linearizable under sharding; what
// multi-Raft gives up is a consistent snapshot across keys in different
// shards (cross-shard transactions are out of scope, as in any
// multi-Raft store without a distributed-txn layer on top).
func (c *Cluster) Get(ctx context.Context, key string) (value string, found bool, err error) {
	return c.GetWith(ctx, key, c.cfg.ReadMode)
}

// GetWith routes a read with an explicit consistency mode.
func (c *Cluster) GetWith(ctx context.Context, key string, mode raft.ReadConsistency) (value string, found bool, err error) {
	s := c.ShardOf(key)
	c.met.gets[s].Inc(s)
	return c.groups[s].Client.ReadWith(ctx, key, mode)
}
