// Package shard composes many independent Raft groups into one
// key-value service — the multi-Raft architecture production stores
// (TiKV, CockroachDB) use to dissolve the single-leader throughput wall.
// It is also the paper's object-oriented thesis at system scale: just as
// one consensus decision decomposes into small objects, a keyspace-wide
// service decomposes into many small consensus instances, each an
// unmodified raft.Node, composed by a router instead of new protocol
// code.
//
// The pieces:
//
//   - Descriptor maps keys to shards: a key hashes to one of a fixed
//     number of slots, and contiguous slot ranges belong to shards. A
//     fixed hash-split is the boot layout; because the map is ranges
//     over slots (not a bare modulus), splitting a hot range into a new
//     shard later is descriptor surgery, not a re-hash of the keyspace.
//   - Cluster runs the groups: every processor multiplexes all of its
//     groups' traffic over its one endpoint via msgnet.Mux
//     channel-per-group, so S shards on N nodes cost N network
//     endpoints, not S×N. Group leaders are spread across nodes by a
//     deterministic placement hint at boot, re-checked on every leader
//     change.
//   - The KV front end (Put/Delete/Get on Cluster) routes each
//     operation to the owning group's raft.Client, reusing the
//     single-group read-consistency paths per shard.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultSlots is the size of the hash slot space keys map into. Slots
// only bound how finely ranges can split (Redis Cluster ships 16384;
// our simulated clusters are far smaller), so the default stays modest
// to keep descriptors cheap to copy and encode.
const DefaultSlots = 1024

// Range assigns the slot interval [Start, End) to a shard.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Shard int `json:"shard"`
}

// Descriptor is the shard map: a slot count and an ordered list of
// contiguous ranges covering [0, Slots). It is a value type — routing
// reads it without locks, and reconfiguration (a future split/merge)
// installs a whole new descriptor rather than mutating in place.
type Descriptor struct {
	Slots  int     `json:"slots"`
	Ranges []Range `json:"ranges"`
}

// SplitEven builds the boot descriptor: slots divided into shards
// near-equal contiguous ranges, shard i owning the i-th.
func SplitEven(shards, slots int) Descriptor {
	if slots <= 0 {
		slots = DefaultSlots
	}
	if shards < 1 {
		shards = 1
	}
	if shards > slots {
		shards = slots
	}
	d := Descriptor{Slots: slots, Ranges: make([]Range, 0, shards)}
	start := 0
	for s := 0; s < shards; s++ {
		end := start + slots/shards
		if s < slots%shards {
			end++
		}
		d.Ranges = append(d.Ranges, Range{Start: start, End: end, Shard: s})
		start = end
	}
	return d
}

// Validate checks the descriptor's invariants: sorted, non-empty,
// contiguous ranges exactly covering [0, Slots).
func (d Descriptor) Validate() error {
	if d.Slots <= 0 {
		return fmt.Errorf("shard: descriptor has %d slots", d.Slots)
	}
	if len(d.Ranges) == 0 {
		return fmt.Errorf("shard: descriptor has no ranges")
	}
	next := 0
	for i, r := range d.Ranges {
		if r.Start != next {
			return fmt.Errorf("shard: range %d starts at %d, want %d (gap or overlap)", i, r.Start, next)
		}
		if r.End <= r.Start {
			return fmt.Errorf("shard: range %d is empty [%d, %d)", i, r.Start, r.End)
		}
		if r.Shard < 0 {
			return fmt.Errorf("shard: range %d assigned to negative shard %d", i, r.Shard)
		}
		next = r.End
	}
	if next != d.Slots {
		return fmt.Errorf("shard: ranges cover [0, %d), want [0, %d)", next, d.Slots)
	}
	return nil
}

// NumShards is one more than the largest shard id any range names.
// With SplitEven layouts this equals the range count.
func (d Descriptor) NumShards() int {
	max := -1
	for _, r := range d.Ranges {
		if r.Shard > max {
			max = r.Shard
		}
	}
	return max + 1
}

// Slot hashes a key into the slot space (FNV-1a; stable across
// processes and runs, so every router in a cluster agrees).
func (d Descriptor) Slot(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(d.Slots))
}

// ShardOf routes a key: hash to a slot, then binary-search the range
// that owns it.
func (d Descriptor) ShardOf(key string) int {
	return d.shardOfSlot(d.Slot(key))
}

func (d Descriptor) shardOfSlot(slot int) int {
	i := sort.Search(len(d.Ranges), func(i int) bool { return d.Ranges[i].End > slot })
	return d.Ranges[i].Shard
}

// Split carves the slot interval [at, End) out of the range owning at
// and assigns it to newShard — the descriptor half of a range split.
// The returned descriptor is a fresh value; the receiver is unchanged.
// (Migrating the data and spinning up the new group under live traffic
// is future work; the map format is ready for it.)
func (d Descriptor) Split(at, newShard int) (Descriptor, error) {
	if at <= 0 || at >= d.Slots {
		return Descriptor{}, fmt.Errorf("shard: split at slot %d outside (0, %d)", at, d.Slots)
	}
	out := Descriptor{Slots: d.Slots, Ranges: make([]Range, 0, len(d.Ranges)+1)}
	split := false
	for _, r := range d.Ranges {
		if at <= r.Start || at >= r.End {
			out.Ranges = append(out.Ranges, r)
			continue
		}
		split = true
		out.Ranges = append(out.Ranges,
			Range{Start: r.Start, End: at, Shard: r.Shard},
			Range{Start: at, End: r.End, Shard: newShard})
	}
	if !split {
		return Descriptor{}, fmt.Errorf("shard: slot %d is already a range boundary", at)
	}
	if err := out.Validate(); err != nil {
		return Descriptor{}, err
	}
	return out, nil
}

// ChannelName is the mux channel a shard's group traffic rides on.
// Inspectors (ooctrace -shards) parse the id back out of recorded wire
// wrappers, so the format is part of the trace contract.
func ChannelName(shard int) string { return fmt.Sprintf("shard/%d", shard) }
