package ooc

// One benchmark per experiment in DESIGN.md §5. Each iteration runs a
// single representative trial of the experiment's workload; the full
// sweeps and tables come from `go run ./cmd/oocbench`. Benchmarks assert
// safety on every iteration, so `go test -bench=.` doubles as a stress
// run.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ooc/internal/adapters"
	"ooc/internal/bench"
	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/multivalue"
	"ooc/internal/netsim"
	"ooc/internal/phaseking"
	"ooc/internal/raft"
	"ooc/internal/sharedmem"
	"ooc/internal/sim"
	"ooc/internal/workload"
)

// benOrTrial runs one full Ben-Or consensus (decomposed or monolithic)
// under the given seed.
func benOrTrial(b *testing.B, decomposed bool, n int, split workload.Split, seed uint64) {
	tFaults := (n - 1) / 2
	rng := sim.NewRNG(seed)
	inputs := workload.BinaryInputs(split, n, rng)
	nw := netsim.New(n, netsim.WithSeed(seed))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	decisions := make([]core.Decision[int], n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if decomposed {
				decisions[id], errs[id] = benor.RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
					core.WithMaxRounds(5000))
			} else {
				decisions[id], errs[id] = benor.RunMonolithic(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id], 5000, nil)
			}
		}(id)
	}
	wg.Wait()
	cancel()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			b.Errorf("node %d: %v", id, errs[id])
			return
		}
		if decisions[id].Value != decisions[0].Value {
			b.Error("agreement violated")
			return
		}
	}
}

// benchBenOr iterates benOrTrial over per-iteration seeds.
func benchBenOr(b *testing.B, decomposed bool, n int, split workload.Split) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benOrTrial(b, decomposed, n, split, uint64(i)+1)
	}
}

// benchBenOrSeedSweepParallel is the multi-seed sweep variant: concurrent
// goroutines drain a shared atomic seed counter, each running a fully
// independent seeded trial — the b.RunParallel analogue of the experiment
// harness's cell pool. Throughput scales with GOMAXPROCS because trials
// share no network, recorder, or RNG state.
func benchBenOrSeedSweepParallel(b *testing.B, n int, split workload.Split) {
	b.Helper()
	b.ReportAllocs()
	var seedCtr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benOrTrial(b, true, n, split, seedCtr.Add(1))
		}
	})
}

// BenchmarkE1BenOrSeedSweepParallel: experiment E1's workload as a
// parallel multi-seed sweep (n=5, half split).
func BenchmarkE1BenOrSeedSweepParallel(b *testing.B) {
	benchBenOrSeedSweepParallel(b, 5, workload.SplitHalf)
}

// BenchmarkE9SeedSweepParallel: experiment E9's heavy-tail workload as a
// parallel multi-seed sweep (n=9, half split).
func BenchmarkE9SeedSweepParallel(b *testing.B) {
	benchBenOrSeedSweepParallel(b, 9, workload.SplitHalf)
}

// BenchmarkE1BenOrDecomposed: experiment E1 — the paper's Ben-Or under
// Algorithm 1 (n=5, adversarial half split).
func BenchmarkE1BenOrDecomposed(b *testing.B) {
	benchBenOr(b, true, 5, workload.SplitHalf)
}

// BenchmarkE2BenOrBaseline: experiment E2 — the monolithic baseline on
// the identical workload.
func BenchmarkE2BenOrBaseline(b *testing.B) {
	benchBenOr(b, false, 5, workload.SplitHalf)
}

// benchPhaseKing runs one full Phase-King consensus.
func benchPhaseKing(b *testing.B, baseline bool) {
	b.Helper()
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		cfg := phaseking.Config{
			N: 7, T: 2,
			Inputs:    map[int]int{2: 0, 3: 1, 4: 0, 5: 1, 6: 0},
			Byzantine: map[int]phaseking.Adversary{0: phaseking.EquivocateAdversary{}, 1: phaseking.SilentAdversary{}},
			Rule:      phaseking.RuleFinalValue,
		}
		var (
			res phaseking.Result
			err error
		)
		if baseline {
			res, err = phaseking.RunBaseline(ctx, cfg)
		} else {
			res, err = phaseking.Run(ctx, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Errs) > 0 || !res.AgreementHolds() {
			b.Fatalf("bad run: %+v", res)
		}
	}
}

// BenchmarkE3PhaseKing: experiment E3 — decomposed Phase-King (n=7, t=2,
// equivocate + silent Byzantine kings).
func BenchmarkE3PhaseKing(b *testing.B) {
	benchPhaseKing(b, false)
}

// BenchmarkE4PhaseKingBaseline: experiment E4 — the monolithic baseline.
func BenchmarkE4PhaseKingBaseline(b *testing.B) {
	benchPhaseKing(b, true)
}

// BenchmarkEAKingDiversion: experiment EA — the attack run (decomposed,
// first-commit rule). Each iteration reproduces the agreement violation.
func BenchmarkEAKingDiversion(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := phaseking.Run(ctx, phaseking.Config{
			N: 4, T: 1,
			Inputs:    map[int]int{1: 0, 2: 0, 3: 1},
			Byzantine: map[int]phaseking.Adversary{0: phaseking.KingDiversionAdversary()},
			Rule:      phaseking.RuleFirstCommit,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AgreementHolds() {
			b.Fatal("attack did not reproduce")
		}
	}
}

// BenchmarkE5RaftConsensus: experiment E5 — Raft single-decree consensus
// via D&S (n=3, real timers on the simulated network).
func BenchmarkE5RaftConsensus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const n = 3
		seed := uint64(i) + 1
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		cns := make([]*raft.ConsensusNode, n)
		for id := 0; id < n; id++ {
			cn, err := raft.NewConsensusNode(raft.Config{
				ID:                id,
				Endpoint:          nw.Node(id),
				RNG:               rng.Fork(uint64(id)),
				ElectionTimeout:   20 * time.Millisecond,
				HeartbeatInterval: 4 * time.Millisecond,
			}, fmt.Sprintf("v%d", id))
			if err != nil {
				b.Fatal(err)
			}
			cns[id] = cn
		}
		results := make([]any, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				results[id], _ = cns[id].Run(ctx)
			}(id)
		}
		wg.Wait()
		cancel()
		for id := 1; id < n; id++ {
			if results[id] != results[0] {
				b.Fatal("agreement violated")
			}
		}
	}
}

// BenchmarkE6RaftVAC: experiment E6 — the VAC view of Raft under the
// generic template (n=3).
func BenchmarkE6RaftVAC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const n = 3
		seed := uint64(i) + 1
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		decisions := make([]core.Decision[string], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			node, err := raft.NewNode(raft.Config{
				ID:                id,
				Endpoint:          nw.Node(id),
				RNG:               rng.Fork(uint64(id)),
				ElectionTimeout:   20 * time.Millisecond,
				HeartbeatInterval: 4 * time.Millisecond,
				ManualCampaign:    true,
			})
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(id int, node *raft.Node) {
				defer wg.Done()
				decisions[id], errs[id] = raft.RunVACConsensus[string](ctx, node, fmt.Sprintf("v%d", id))
			}(id, node)
		}
		wg.Wait()
		cancel()
		for id := 0; id < n; id++ {
			if errs[id] != nil {
				b.Fatal(errs[id])
			}
			if decisions[id].Value != decisions[0].Value {
				b.Fatal("agreement violated")
			}
		}
	}
}

// BenchmarkE7VACFromAC: experiment E7 — one round of the Section 5
// composite VAC over shared-memory ACs (n=8, concurrent).
func BenchmarkE7VACFromAC(b *testing.B) {
	b.ReportAllocs()
	const n = 8
	rng := sim.NewRNG(3)
	for i := 0; i < b.N; i++ {
		store1 := adapters.NewSharedACStore(n)
		store2 := adapters.NewSharedACStore(n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id, v int) {
				defer wg.Done()
				vac := adapters.NewVACFromACs[int](store1.Object(id), store2.Object(id))
				if _, _, err := vac.Propose(context.Background(), v, 1); err != nil {
					b.Error(err)
				}
			}(id, rng.Bit())
		}
		wg.Wait()
	}
}

// BenchmarkE8OutcomeClasses: experiment E8 — one instrumented Ben-Or run
// per iteration, counting the three outcome classes.
func BenchmarkE8OutcomeClasses(b *testing.B) {
	b.ReportAllocs()
	const n, tFaults = 5, 2
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		rng := sim.NewRNG(seed)
		inputs := workload.BinaryInputs(workload.SplitHalf, n, rng)
		nw := netsim.New(n, netsim.WithSeed(seed))
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		log := &adapters.OutcomeLog{}
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				vac, err := benor.NewVAC(nw.Node(id), tFaults)
				if err != nil {
					b.Error(err)
					return
				}
				iv := adapters.NewInstrumentedVAC[int](vac, log, id)
				if _, err := core.RunVAC[int](ctx, iv, benor.NewReconciliator(rng.Fork(uint64(id))), inputs[id],
					core.WithMaxRounds(5000)); err != nil {
					b.Error(err)
				}
			}(id)
		}
		wg.Wait()
		cancel()
		if len(log.All()) == 0 {
			b.Fatal("no outcomes recorded")
		}
	}
}

// BenchmarkE9RoundsToConsensus: experiment E9 — one half-split Ben-Or run
// at n=9 per iteration (the heavy tail the distribution table measures).
func BenchmarkE9RoundsToConsensus(b *testing.B) {
	benchBenOr(b, true, 9, workload.SplitHalf)
}

// BenchmarkE10MessageComplexity: experiment E10 — one traced Ben-Or run,
// reporting messages per operation.
func BenchmarkE10MessageComplexity(b *testing.B) {
	b.ReportAllocs()
	tbl, err := bench.RunE10(bench.Suite{Trials: 1, Quick: true, BaseSeed: uint64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		b.Fatal("no rows")
	}
	b.ResetTimer()
	benchBenOr(b, true, 5, workload.SplitHalf)
}

// BenchmarkF1RaftMessageCodec: figure F1 — encode/decode all four Raft
// message formats.
func BenchmarkF1RaftMessageCodec(b *testing.B) {
	b.ReportAllocs()
	for _, wt := range raft.WireTypes() {
		gob.Register(wt)
	}
	msgs := []any{
		raft.RequestVote{Term: 3, CandidateID: 1, LastLogIndex: 7, LastLogTerm: 2},
		raft.RequestVoteReply{Term: 3, VoteGranted: true},
		raft.AppendEntries{Term: 3, LeaderID: 1, PrevLogIndex: 6, PrevLogTerm: 2,
			Entries: []raft.Entry{{Term: 3, Command: raft.DS{Value: "v"}}}, LeaderCommit: 6},
		raft.AppendEntriesReply{Term: 3, Success: true, MatchIndex: 7},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		for _, m := range msgs {
			env := struct{ Payload any }{Payload: m}
			if err := enc.Encode(env); err != nil {
				b.Fatal(err)
			}
			var out struct{ Payload any }
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkF2RaftStateMachine: figure F2 — a full election + replication
// cycle driving every Figure 2 state variable.
func BenchmarkF2RaftStateMachine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const n = 3
		seed := uint64(i) + 1
		nw := netsim.New(n, netsim.WithSeed(seed))
		rng := sim.NewRNG(seed)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		kvs := make([]*raft.KVStore, n)
		nodes := make([]*raft.Node, n)
		for id := 0; id < n; id++ {
			kvs[id] = &raft.KVStore{}
			node, err := raft.NewNode(raft.Config{
				ID:                id,
				Endpoint:          nw.Node(id),
				RNG:               rng.Fork(uint64(id)),
				ElectionTimeout:   20 * time.Millisecond,
				HeartbeatInterval: 4 * time.Millisecond,
				StateMachine:      kvs[id],
			})
			if err != nil {
				b.Fatal(err)
			}
			nodes[id] = node
			node.Start(ctx)
		}
		var idx int
		for {
			leader := -1
			for id, node := range nodes {
				if node.Status().State == raft.Leader {
					leader = id
				}
			}
			if leader >= 0 {
				var err error
				idx, err = nodes[leader].Propose(ctx, raft.KVCommand{Op: "set", Key: "k", Value: "v"})
				if err == nil {
					break
				}
			}
			time.Sleep(time.Millisecond)
		}
		for done := false; !done; {
			done = true
			for _, kv := range kvs {
				if kv.AppliedIndex() < idx {
					done = false
				}
			}
			if !done {
				time.Sleep(time.Millisecond)
			}
		}
		cancel()
	}
}

// BenchmarkE11Multivalued: experiment E11 — one multivalued consensus
// run (n=5, 3-value domain) per iteration.
func BenchmarkE11Multivalued(b *testing.B) {
	b.ReportAllocs()
	const n, tFaults = 5, 2
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		rng := sim.NewRNG(seed)
		nw := netsim.New(n, netsim.WithSeed(seed))
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		inputs := make([]string, n)
		for id := range inputs {
			inputs[id] = fmt.Sprintf("v%d", rng.Intn(3))
		}
		decisions := make([]core.Decision[string], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				decisions[id], errs[id] = multivalue.RunDecomposed[string](ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
					core.WithMaxRounds(20000))
			}(id)
		}
		wg.Wait()
		cancel()
		for id := 0; id < n; id++ {
			if errs[id] != nil {
				b.Fatal(errs[id])
			}
			if decisions[id].Value != decisions[0].Value {
				b.Fatal("agreement violated")
			}
		}
	}
}

// BenchmarkE12SharedMemory: experiment E12 — one shared-memory consensus
// (Gafni AC + probabilistic-write conciliator, n=8) per iteration.
func BenchmarkE12SharedMemory(b *testing.B) {
	b.ReportAllocs()
	const n = 8
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		rng := sim.NewRNG(seed)
		cons := sharedmem.NewConsensus(n)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		decisions := make([]core.Decision[int], n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				decisions[id], errs[id] = cons.Run(ctx, id, rng.Fork(uint64(id)), id%2,
					core.WithMaxRounds(20000))
			}(id)
		}
		wg.Wait()
		cancel()
		for id := 0; id < n; id++ {
			if errs[id] != nil {
				b.Fatal(errs[id])
			}
			if decisions[id].Value != decisions[0].Value {
				b.Fatal("agreement violated")
			}
		}
	}
}

// BenchmarkE14RaftThroughput: experiment E14 — one closed-loop throughput
// window against a FileStorage-backed cluster, the group-commit and
// pipelining hot path. Reports committed ops/sec and fsyncs per op.
func BenchmarkE14RaftThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRaftThroughput(bench.ThroughputConfig{
			Nodes:       3,
			Clients:     8,
			Duration:    200 * time.Millisecond,
			Seed:        uint64(i) + 1,
			FileStorage: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no ops committed")
		}
		b.ReportMetric(res.OpsPerSec, "ops/sec")
		b.ReportMetric(res.FsyncsPerOp, "fsyncs/op")
	}
}

// BenchmarkE16MultiShard: experiment E16 — one closed-loop multi-Raft
// window (2 shards over 3 nodes, file storage). Asserts the shard
// router spread work across groups and leadership across nodes; reports
// aggregate committed ops/sec.
func BenchmarkE16MultiShard(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMultiShard(bench.MultiShardConfig{
			Nodes:           3,
			Shards:          2,
			ClientsPerShard: 8,
			Duration:        200 * time.Millisecond,
			Seed:            uint64(i) + 1,
			FileStorage:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no ops committed")
		}
		for s, n := range res.PerShardOps {
			if n == 0 {
				b.Fatalf("shard %d committed nothing: router funnelled %v", s, res.PerShardOps)
			}
		}
		if res.LeaderSpread < 2 {
			b.Fatalf("leaders on %d node(s), placement %v", res.LeaderSpread, res.LeaderPlacement)
		}
		b.ReportMetric(res.OpsPerSec, "ops/sec")
		b.ReportMetric(res.FsyncsPerOp, "fsyncs/op")
	}
}

// BenchmarkE18GroupCommit: experiment E18 — one closed-loop multi-Raft
// window (4 shards over 3 nodes, file storage) with all of a node's
// replicas sharing one modeled 2ms device, sync coalescing on. Asserts
// the node-wide syncer actually merged flushes (mean barrier width above
// 1) and reports ops/sec plus the device-barrier cost per op.
func BenchmarkE18GroupCommit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMultiShard(bench.MultiShardConfig{
			Nodes:           3,
			Shards:          4,
			ClientsPerShard: 1,
			Duration:        200 * time.Millisecond,
			Seed:            uint64(i) + 1,
			FileStorage:     true,
			DeviceLatency:   2 * time.Millisecond,
			ElectionTimeout: 150 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no ops committed")
		}
		if res.Barriers == 0 {
			b.Fatal("no device barriers recorded: syncer not wired")
		}
		if res.MeanWidth <= 1.0 {
			b.Fatalf("no cross-group coalescing: mean barrier width %.2f over %d barriers",
				res.MeanWidth, res.Barriers)
		}
		b.ReportMetric(res.OpsPerSec, "ops/sec")
		b.ReportMetric(res.BarriersPerOp, "barriers/op")
		b.ReportMetric(res.MeanWidth, "width")
	}
}

// BenchmarkE17Pipeline: experiment E17 — one closed-loop window against
// a FileStorage cluster pinned behind a 2ms SlowDisk, on the pipelined
// write path (parallel leader persist + async apply). Reports committed
// ops/sec and the p50 the pipeline is supposed to cut.
func BenchmarkE17Pipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRaftThroughput(bench.ThroughputConfig{
			Nodes:       3,
			Clients:     8,
			Duration:    200 * time.Millisecond,
			Seed:        uint64(i) + 1,
			FileStorage: true,
			SlowDisk:    2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no ops committed")
		}
		b.ReportMetric(res.OpsPerSec, "ops/sec")
		b.ReportMetric(res.P50.Seconds()*1e3, "p50-ms")
	}
}

func BenchmarkE15ReadFastPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRaftThroughput(bench.ThroughputConfig{
			Nodes:         3,
			Clients:       8,
			Duration:      200 * time.Millisecond,
			Seed:          uint64(i) + 1,
			FileStorage:   true,
			ReadRatio:     0.9,
			ReadMode:      raft.ReadLease,
			LeaseDuration: 15 * time.Millisecond,
			Keys:          256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no ops completed")
		}
		if res.Reads > 0 && res.LeaseReads+res.IndexReads == 0 {
			b.Fatal("reads completed but none were served by the fast path")
		}
		b.ReportMetric(res.OpsPerSec, "ops/sec")
		b.ReportMetric(res.ReadP50.Seconds()*1e3, "read-p50-ms")
	}
}
