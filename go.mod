module ooc

go 1.22
