// Command oocbench regenerates the reproduction's experiment tables (see
// DESIGN.md §5 and EXPERIMENTS.md).
//
// Usage:
//
//	oocbench                  # run the full matrix
//	oocbench -experiment E1   # run one experiment
//	oocbench -quick -trials 5 # trimmed sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ooc/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id to run (default: all)")
		trials     = flag.Int("trials", 20, "seeded repetitions per configuration")
		quick      = flag.Bool("quick", false, "trim parameter sweeps")
		seed       = flag.Uint64("seed", 0, "base seed offset")
	)
	flag.Parse()
	if err := run(*experiment, *trials, *quick, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "oocbench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, trials int, quick bool, seed uint64) error {
	suite := bench.Suite{Trials: trials, Quick: quick, BaseSeed: seed}
	experiments := bench.Experiments()
	if experiment != "" {
		e, ok := bench.ByID(experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q; known: %s", experiment, knownIDs())
		}
		experiments = []bench.Experiment{e}
	}
	for _, e := range experiments {
		start := time.Now()
		fmt.Printf("running %s: %s ...\n", e.ID, e.Name)
		tbl, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		tbl.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func knownIDs() string {
	out := ""
	for i, e := range bench.Experiments() {
		if i > 0 {
			out += ", "
		}
		out += e.ID
	}
	return out
}
