// Command oocbench regenerates the reproduction's experiment tables (see
// DESIGN.md §5 and EXPERIMENTS.md).
//
// Usage:
//
//	oocbench                  # run the full matrix
//	oocbench -experiment E1   # run one experiment
//	oocbench -quick -trials 5 # trimmed sweep
//	oocbench -parallel        # run simulation-time experiments concurrently
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"ooc/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id to run (default: all)")
		trials     = flag.Int("trials", 20, "seeded repetitions per configuration")
		quick      = flag.Bool("quick", false, "trim parameter sweeps")
		seed       = flag.Uint64("seed", 0, "base seed offset")
		parallel   = flag.Bool("parallel", false,
			"run simulation-time experiments concurrently (wall-clock Raft experiments still run sequentially)")
		jsonOut = flag.Bool("json", false, "render tables as JSON documents instead of aligned text")
		withMet = flag.Bool("metrics", false,
			"collect per-cell telemetry snapshots (netsim/object counters and latency histograms) into the tables; implies little overhead but is most useful with -json")
	)
	flag.Parse()
	if err := run(*experiment, *trials, *quick, *seed, *parallel, *jsonOut, *withMet); err != nil {
		fmt.Fprintf(os.Stderr, "oocbench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, trials int, quick bool, seed uint64, parallel, jsonOut, withMet bool) error {
	suite := bench.Suite{Trials: trials, Quick: quick, BaseSeed: seed, CollectMetrics: withMet}
	experiments := bench.Experiments()
	if experiment != "" {
		e, ok := bench.ByID(experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q; known: %s", experiment, knownIDs())
		}
		experiments = []bench.Experiment{e}
	}
	if parallel {
		return runParallel(experiments, suite, jsonOut)
	}
	for _, e := range experiments {
		start := time.Now()
		if !jsonOut {
			fmt.Printf("running %s: %s ...\n", e.ID, e.Name)
		}
		tbl, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if jsonOut {
			if err := tbl.RenderJSON(os.Stdout); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		} else {
			tbl.Render(os.Stdout)
			fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// runParallel runs the simulation-time experiments on a bounded worker
// pool, then the wall-clock (Raft) experiments sequentially so their
// timer-driven measurements aren't distorted by CPU contention. Each
// experiment renders into its own buffer; output is printed in
// presentation order, identical to a sequential run.
func runParallel(experiments []bench.Experiment, suite bench.Suite, jsonOut bool) error {
	type result struct {
		buf bytes.Buffer
		dur time.Duration
		err error
	}
	results := make([]result, len(experiments))
	runOne := func(i int) {
		e := experiments[i]
		start := time.Now()
		tbl, err := e.Run(suite)
		results[i].dur = time.Since(start).Round(time.Millisecond)
		if err != nil {
			results[i].err = fmt.Errorf("%s: %w", e.ID, err)
			return
		}
		if jsonOut {
			results[i].err = tbl.RenderJSON(&results[i].buf)
			return
		}
		tbl.Render(&results[i].buf)
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, e := range experiments {
		if e.WallClock {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Name)
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			runOne(i)
		}(i)
	}
	wg.Wait()
	for i, e := range experiments {
		if !e.WallClock {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Name)
		runOne(i)
	}
	for i, e := range experiments {
		if results[i].err != nil {
			return results[i].err
		}
		if jsonOut {
			os.Stdout.Write(results[i].buf.Bytes())
			continue
		}
		fmt.Printf("running %s: %s ...\n", e.ID, e.Name)
		os.Stdout.Write(results[i].buf.Bytes())
		fmt.Printf("  (%s in %v)\n\n", e.ID, results[i].dur)
	}
	return nil
}

func knownIDs() string {
	out := ""
	for i, e := range bench.Experiments() {
		if i > 0 {
			out += ", "
		}
		out += e.ID
	}
	return out
}
