package main

import (
	"context"
	"fmt"
	"time"

	"ooc/internal/bench"
	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
	"ooc/internal/shard"
	"ooc/internal/sim"
	"ooc/internal/transport"
)

// runMultiShardBench runs the closed-loop multi-Raft benchmark (the E16
// engine): the keyspace hash-split across shards independent groups
// multiplexed over one simulated network, clients closed-loop clients
// per shard.
func runMultiShardBench(n, shards, clients int, duration time.Duration, disk bool, seed uint64,
	readRatio float64, readMode raft.ReadConsistency, lease time.Duration, reg *metrics.Registry) error {
	if !disk {
		return fmt.Errorf("multi-shard bench persists through FileStorage; it needs -disk=true")
	}
	mix := "write-only"
	if readRatio > 0 {
		mix = fmt.Sprintf("%.0f%% %v reads", readRatio*100, readMode)
	}
	fsync := "coalesced"
	if !syncCoalesce {
		fsync = "per-group"
	}
	if deviceLatency > 0 {
		fsync += fmt.Sprintf(", %v shared device", deviceLatency)
	}
	fmt.Printf("raftkv multi-shard bench: %d nodes, %d shards, %d clients/shard, %v window, %s, fsync %s\n",
		n, shards, clients, duration, mix, fsync)
	res, err := bench.RunMultiShard(bench.MultiShardConfig{
		Nodes:           n,
		Shards:          shards,
		ClientsPerShard: clients,
		Duration:        duration,
		Seed:            seed,
		FileStorage:     true,
		Metrics:         reg,
		Tracer:          tracer,
		Flights:         flights,
		ReadRatio:       readRatio,
		ReadMode:        readMode,
		LeaseDuration:   lease,
		SyncPipeline:    syncPipeline,
		DeviceLatency:   deviceLatency,
		PerGroupFsync:   !syncCoalesce,
		Recorder:        shardTrace,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  committed ops   %d\n", res.Ops)
	fmt.Printf("  throughput      %.0f ops/sec\n", res.OpsPerSec)
	fmt.Printf("  latency p50     %v\n", res.P50.Round(10*time.Microsecond))
	fmt.Printf("  latency p99     %v\n", res.P99.Round(10*time.Microsecond))
	fmt.Printf("  fsyncs          %d (%.3f per op, per-file)\n", res.Fsyncs, res.FsyncsPerOp)
	if res.Barriers > 0 {
		fmt.Printf("  device barriers %d (%.3f per op, mean width %.2f)\n",
			res.Barriers, res.BarriersPerOp, res.MeanWidth)
	}
	fmt.Printf("  per-shard ops  ")
	for s, ops := range res.PerShardOps {
		fmt.Printf(" shard%d=%d", s, ops)
	}
	fmt.Println()
	fmt.Printf("  leaders        ")
	for s, node := range res.LeaderPlacement {
		fmt.Printf(" shard%d→node%d", s, node)
	}
	fmt.Printf("  (spread %d/%d nodes, %d rebalances)\n", res.LeaderSpread, n, res.Rebalances)
	fmt.Printf("  key imbalance   %.2f (max/mean keys per shard)\n", res.KeyImbalance)
	return nil
}

// runMultiShardDemo runs a whole multi-Raft cluster in one process over
// loopback TCP: shards independent groups share n transports through
// per-group mux channels, writes route by key, and a linearizable read
// comes back through the owning group's fast path.
func runMultiShardDemo(n, shards int, readMode raft.ReadConsistency, lease time.Duration, reg *metrics.Registry) error {
	fmt.Printf("starting %d-node / %d-shard raft kv cluster on loopback TCP...\n", n, shards)
	eps, err := transport.NewLocalCluster(n, transport.WithCodec(wireCodec), transport.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	endpoints := make([]msgnet.Endpoint, n)
	for i, ep := range eps {
		endpoints[i] = ep
	}
	cluster, err := shard.NewCluster(shard.Config{
		Endpoints:         endpoints,
		Shards:            shards,
		RNG:               sim.NewRNG(42),
		ElectionTimeout:   150 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond,
		LeaseDuration:     lease,
		ReadMode:          readMode,
		Metrics:           reg,
		Tracer:            tracer,
		Flights:           flights,
		SyncPipeline:      syncPipeline,
	})
	if err != nil {
		return err
	}
	if err := cluster.Start(ctx); err != nil {
		return err
	}
	for i, ep := range eps {
		fmt.Printf("  node %d listening on %s (%d group channels)\n", i, ep.Addr(), shards)
	}
	if err := cluster.WaitForLeaders(ctx); err != nil {
		return err
	}
	fmt.Printf("leaders elected:")
	for s, node := range cluster.LeaderPlacement() {
		fmt.Printf(" shard%d→node%d", s, node)
	}
	fmt.Printf("  (spread %d/%d nodes)\n", cluster.LeaderSpread(), n)

	for i := 0; i < 2*shards; i++ {
		key, val := fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i)
		s, idx, err := cluster.Put(ctx, key, val)
		if err != nil {
			return fmt.Errorf("put %s: %w", key, err)
		}
		fmt.Printf("put %s=%s → shard %d index %d\n", key, val, s, idx)
	}
	v, ok, err := cluster.GetWith(ctx, "key0", raft.ReadLinearizable)
	if err != nil {
		return fmt.Errorf("get key0: %w", err)
	}
	fmt.Printf("linearizable read via shard %d: key0=%q (found=%v)\n", cluster.ShardOf("key0"), v, ok)

	// Read each shard's leader replica: follower replicas may be an
	// apply batch behind at any instant, which would read as data loss.
	fmt.Printf("per-shard state:\n")
	for s, leader := range cluster.LeaderPlacement() {
		g := cluster.Group(s)
		if leader < 0 {
			leader = 0
		}
		if kv, ok := g.StateMachine(leader).(*raft.KVStore); ok {
			fmt.Printf("  shard %d (leader node %d): %v\n", s, leader, kv.Snapshot())
		}
	}
	fmt.Println("demo ok")
	return nil
}
