// Command raftkv is a replicated key-value store over real TCP — the
// kind of application log Raft was designed for (paper §4.3).
//
// Demo mode runs a whole cluster in one process on loopback sockets,
// exercises replication and leader failover, and exits:
//
//	raftkv -demo -n 5
//
// Server mode runs one node of a multi-process cluster and accepts
// commands on stdin (set k v | del k | get k | status | quit):
//
//	raftkv -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Either mode exposes live telemetry when given -telemetry addr: an HTTP
// listener serving /metrics (Prometheus text, or JSON with
// ?format=json) and the standard /debug/pprof endpoints:
//
//	raftkv -demo -telemetry 127.0.0.1:9100
//	curl 127.0.0.1:9100/metrics
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ooc/internal/bench"
	"ooc/internal/metrics"
	"ooc/internal/msgnet"
	"ooc/internal/raft"
	"ooc/internal/rtrace"
	"ooc/internal/sim"
	"ooc/internal/trace"
	"ooc/internal/transport"
)

// wireCodec is the TCP encoding selected by -codec; demo and server
// modes pass it to every transport they open. Bench mode runs over the
// in-memory simulator, which passes payloads by reference — the codec
// reaches its numbers through the storage path there.
var wireCodec transport.Codec

// tracer samples per-request spans when -trace-sample > 0 (nil
// otherwise: every hook no-ops). flights holds one flight recorder per
// in-process node when -flight-dir is set (nil otherwise), dumping to
// that directory on anomalies.
var (
	tracer  *rtrace.Tracer
	flights []*rtrace.Flight
)

// syncPipeline mirrors -sync-pipeline; every mode passes it into
// raft.Config so one binary can A/B the ordered write path against the
// pipelined default.
var syncPipeline bool

// syncCoalesce mirrors -sync-coalesce (default true): persistent modes
// install a per-node sync coalescer so concurrent durability barriers
// from co-located Raft groups merge into one device flush. false keeps
// the per-group fsync baseline in the same binary, like -sync-pipeline.
// deviceLatency mirrors -device-latency: a modeled shared-device cost
// per barrier for the multi-shard bench (the E18 fixture).
// shardTrace is the multi-shard bench's protocol recorder (non-nil only
// when -shard-trace-out is set): it captures mux-tagged message events
// plus per-flush fsync notes, the input for ooctrace's per-channel
// fsyncs/width columns.
var (
	syncCoalesce  bool
	deviceLatency time.Duration
	shardTrace    *trace.Recorder
)

// writeShardTrace dumps the multi-shard bench's protocol trace to path.
func writeShardTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f, shardTrace.Snapshot()); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// newFlights builds count recorders dumping into dir ("" = disabled).
func newFlights(count int, dir string, reg *metrics.Registry) []*rtrace.Flight {
	if dir == "" {
		return nil
	}
	fl := make([]*rtrace.Flight, count)
	for i := range fl {
		fl[i] = rtrace.NewFlight(i, 4096, rtrace.WithFlightDir(dir), rtrace.WithFlightMetrics(reg))
	}
	return fl
}

func main() {
	var (
		demo      = flag.Bool("demo", false, "run an in-process demo cluster and exit")
		n         = flag.Int("n", 3, "demo cluster size")
		id        = flag.Int("id", 0, "this node's index into -peers")
		peers     = flag.String("peers", "", "comma-separated cluster addresses, indexed by node id")
		telemetry = flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
		benchMode = flag.Bool("bench", false, "run the closed-loop throughput benchmark and exit")
		clients   = flag.Int("clients", 8, "bench mode: concurrent closed-loop clients")
		duration  = flag.Duration("duration", time.Second, "bench mode: measurement window")
		diskStore = flag.Bool("disk", true, "bench mode: persist through FileStorage (fsync path); false = MemStorage")
		seed      = flag.Uint64("seed", 1, "bench mode: simulation seed")
		readCons  = flag.String("read-consistency", "linearizable", "how get serves reads: linearizable | lease | stale (bench mode also accepts log)")
		lease     = flag.Duration("lease", 0, "leader lease duration (0 disables; reads with -read-consistency lease skip the quorum round while it holds)")
		readRatio = flag.Float64("read-ratio", 0, "bench mode: fraction of ops that are reads (0 = write-only E14 loop)")
		shards    = flag.Int("shards", 1, "split the keyspace across this many independent Raft groups (demo and bench modes)")
		codecName = flag.String("codec", "binary", "TCP wire encoding: binary (hand-rolled zero-alloc codec) | gob (compatibility oracle)")
		sample    = flag.Float64("trace-sample", 0, "per-request tracing sample rate in [0,1]; 0 disables (span timelines dump to -trace-out for ooctrace -request)")
		traceOut  = flag.String("trace-out", "", "write sampled span timelines to this JSON file on exit (requires -trace-sample > 0)")
		flightDir = flag.String("flight-dir", "", "arm per-node flight recorders dumping recent events to this directory on anomalies (elections, lease expiries, mux backlog drops)")
		syncPipe  = flag.Bool("sync-pipeline", false, "run the fully ordered write path (fsync before broadcast, apply on the main loop) instead of the pipelined default")
		coalesce  = flag.Bool("sync-coalesce", true, "coalesce concurrent fsyncs from co-located Raft groups into one device barrier per node; false = per-group fsync baseline")
		devLat    = flag.Duration("device-latency", 0, "bench mode with -shards>1: model one shared storage device per node with this latency per durability barrier (the E18 fixture; 0 disables)")
		shardTr   = flag.String("shard-trace-out", "", "bench mode with -shards>1: write the protocol trace (mux traffic + per-flush fsync notes) to this JSON file for ooctrace's channel table")
	)
	flag.Parse()
	syncPipeline = *syncPipe
	syncCoalesce = *coalesce
	deviceLatency = *devLat
	if *shardTr != "" {
		if !*benchMode || *shards <= 1 {
			fmt.Fprintln(os.Stderr, "raftkv: -shard-trace-out needs -bench with -shards > 1")
			os.Exit(1)
		}
		shardTrace = trace.NewTimedRecorder()
	}
	transport.Register(raft.WireTypes()...)
	transport.Register(msgnet.WireTypes()...) // multi-shard traffic rides the mux wrapper

	readMode, err := raft.ParseReadConsistency(*readCons)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raftkv: %v\n", err)
		os.Exit(1)
	}
	switch *codecName {
	case "binary":
		wireCodec = transport.Binary
	case "gob":
		wireCodec = transport.Gob
	default:
		fmt.Fprintf(os.Stderr, "raftkv: unknown -codec %q (binary | gob)\n", *codecName)
		os.Exit(1)
	}

	var reg *metrics.Registry
	if *telemetry != "" {
		reg = metrics.NewRegistry()
	}
	if *sample > 0 {
		tracer = rtrace.New(rtrace.Options{Sample: *sample, Registry: reg})
	} else if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "raftkv: -trace-out needs -trace-sample > 0")
		os.Exit(1)
	}
	// Demo and bench modes run the whole cluster in-process (one recorder
	// per node); server mode runs one node, labeled with its cluster id.
	if *demo || *benchMode {
		flights = newFlights(*n, *flightDir, reg)
	} else if *flightDir != "" {
		flights = []*rtrace.Flight{rtrace.NewFlight(*id, 4096,
			rtrace.WithFlightDir(*flightDir), rtrace.WithFlightMetrics(reg))}
	}
	if *telemetry != "" {
		var routes []metrics.Route
		if len(flights) > 0 {
			// /debug/flight serves the first in-process node's ring; the
			// per-node views sit underneath it.
			routes = append(routes, metrics.Route{Pattern: "/debug/flight", Handler: flights[0].Handler()})
			for i, fl := range flights {
				routes = append(routes, metrics.Route{Pattern: fmt.Sprintf("/debug/flight/%d", i), Handler: fl.Handler()})
			}
		}
		srv, err := metrics.Serve(*telemetry, reg, routes...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raftkv: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr)
		if len(flights) > 0 {
			fmt.Printf("flight recorder on http://%s/debug/flight (dumps to %s)\n", srv.Addr, *flightDir)
		}
	}

	switch {
	case *benchMode && *shards > 1:
		err = runMultiShardBench(*n, *shards, *clients, *duration, *diskStore, *seed, *readRatio, readMode, *lease, reg)
	case *benchMode:
		err = runBench(*n, *clients, *duration, *diskStore, *seed, *readRatio, readMode, *lease, reg)
	case *demo && *shards > 1:
		err = runMultiShardDemo(*n, *shards, readMode, *lease, reg)
	case *demo:
		err = runDemo(*n, *lease, reg)
	default:
		if *shards > 1 {
			err = fmt.Errorf("-shards applies to -demo and -bench; server mode runs one single-group node per process")
		} else {
			err = runServer(*id, strings.Split(*peers, ","), readMode, *lease, reg)
		}
	}
	if shardTrace != nil {
		if werr := writeShardTrace(*shardTr); werr != nil {
			fmt.Fprintf(os.Stderr, "raftkv: shard trace dump: %v\n", werr)
		} else {
			fmt.Printf("protocol trace written to %s (view: ooctrace %s)\n", *shardTr, *shardTr)
		}
	}
	if tracer != nil && *traceOut != "" {
		if werr := tracer.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "raftkv: trace dump: %v\n", werr)
		} else {
			fmt.Printf("sampled spans written to %s (view: ooctrace -spans %s -request <id>)\n", *traceOut, *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "raftkv: %v\n", err)
		os.Exit(1)
	}
}

// runBench runs the closed-loop throughput benchmark (the engine behind
// experiments E14 and E15) and prints a one-screen report.
func runBench(n, clients int, duration time.Duration, disk bool, seed uint64,
	readRatio float64, readMode raft.ReadConsistency, lease time.Duration, reg *metrics.Registry) error {
	kind := "mem"
	if disk {
		kind = "file (group-commit fsync)"
	}
	mix := "write-only"
	if readRatio > 0 {
		mix = fmt.Sprintf("%.0f%% %v reads", readRatio*100, readMode)
	}
	fmt.Printf("raftkv bench: %d nodes, %d closed-loop clients, %v window, storage=%s, %s\n",
		n, clients, duration, kind, mix)
	res, err := bench.RunRaftThroughput(bench.ThroughputConfig{
		Nodes:         n,
		Clients:       clients,
		Duration:      duration,
		Seed:          seed,
		FileStorage:   disk,
		Metrics:       reg,
		Tracer:        tracer,
		Flights:       flights,
		ReadRatio:     readRatio,
		ReadMode:      readMode,
		LeaseDuration: lease,
		SyncPipeline:  syncPipeline,
		SyncCoalesce:  syncCoalesce,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  committed ops   %d\n", res.Ops)
	fmt.Printf("  throughput      %.0f ops/sec\n", res.OpsPerSec)
	fmt.Printf("  latency p50     %v\n", res.P50.Round(10*time.Microsecond))
	fmt.Printf("  latency p99     %v\n", res.P99.Round(10*time.Microsecond))
	if disk {
		fmt.Printf("  fsyncs          %d (%.3f per op)\n", res.Fsyncs, res.FsyncsPerOp)
	}
	fmt.Printf("  allocs per op   %.1f (process-wide)\n", res.AllocsPerOp)
	if readRatio > 0 {
		fmt.Printf("  reads/writes    %d / %d\n", res.Reads, res.Writes)
		fmt.Printf("  read p50/p99    %v / %v\n",
			res.ReadP50.Round(10*time.Microsecond), res.ReadP99.Round(10*time.Microsecond))
		fmt.Printf("  served by       lease=%d readindex=%d stale=%d forwarded=%d\n",
			res.LeaseReads, res.IndexReads, res.StaleReads, res.ForwardedReads)
	}
	return nil
}

func startNode(id int, ep *transport.Transport, kv *raft.KVStore, seed uint64, lease time.Duration, reg *metrics.Registry) (*raft.Node, error) {
	return raft.NewNode(raft.Config{
		ID:                id,
		Endpoint:          ep,
		RNG:               sim.NewRNG(seed).Fork(uint64(id)),
		ElectionTimeout:   150 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond,
		StateMachine:      kv,
		Metrics:           reg,
		Tracer:            tracer,
		Flight:            flightFor(id),
		LeaseDuration:     lease,
		SyncPipeline:      syncPipeline,
	})
}

// flightFor maps an in-process node id to its recorder (server mode has
// exactly one, whatever the node's cluster id).
func flightFor(id int) *rtrace.Flight {
	if len(flights) == 1 {
		return flights[0]
	}
	if id < len(flights) {
		return flights[id]
	}
	return nil
}

func runDemo(n int, lease time.Duration, reg *metrics.Registry) error {
	fmt.Printf("starting %d-node raft kv cluster on loopback TCP...\n", n)
	eps, err := transport.NewLocalCluster(n, transport.WithCodec(wireCodec), transport.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	kvs := make([]*raft.KVStore, n)
	nodes := make([]*raft.Node, n)
	for id := 0; id < n; id++ {
		kvs[id] = &raft.KVStore{}
		node, err := startNode(id, eps[id], kvs[id], 42, lease, reg)
		if err != nil {
			return err
		}
		nodes[id] = node
		node.Start(ctx)
		fmt.Printf("  node %d listening on %s\n", id, eps[id].Addr())
	}

	leader, err := awaitLeader(ctx, nodes, nil)
	if err != nil {
		return err
	}
	fmt.Printf("leader elected: node %d (term %d)\n", leader, nodes[leader].Status().Term)

	var lastIdx int
	for i := 0; i < 5; i++ {
		key, val := fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i)
		lastIdx, err = nodes[leader].Propose(ctx, raft.KVCommand{Op: "set", Key: key, Value: val})
		if err != nil {
			return fmt.Errorf("propose %s: %w", key, err)
		}
	}
	if err := awaitApplied(ctx, kvs, lastIdx, nil); err != nil {
		return err
	}
	fmt.Printf("replicated %d entries to all nodes; node %d sees %v\n", lastIdx, n-1, kvs[n-1].Snapshot())

	// A linearizable read through the fast path: no log append, no fsync —
	// one piggybacked heartbeat round confirms leadership, then the value
	// is served from the leader's local state machine.
	if _, err := nodes[leader].ReadIndex(ctx); err != nil {
		return fmt.Errorf("read index: %w", err)
	}
	if v, ok := kvs[leader].Get("key0"); ok {
		fmt.Printf("linearizable read (ReadIndex fast path): key0=%s\n", v)
	}

	fmt.Printf("crashing leader node %d...\n", leader)
	_ = eps[leader].Close()
	dead := map[int]bool{leader: true}
	leader2, err := awaitLeader(ctx, nodes, dead)
	if err != nil {
		return err
	}
	fmt.Printf("failover complete: new leader node %d (term %d)\n", leader2, nodes[leader2].Status().Term)
	lastIdx, err = nodes[leader2].Propose(ctx, raft.KVCommand{Op: "set", Key: "post-failover", Value: "ok"})
	if err != nil {
		return err
	}
	if err := awaitApplied(ctx, kvs, lastIdx, dead); err != nil {
		return err
	}
	fmt.Printf("post-failover write committed; node %d sees %v\n", leader2, kvs[leader2].Snapshot())
	fmt.Println("demo ok")
	return nil
}

func awaitLeader(ctx context.Context, nodes []*raft.Node, dead map[int]bool) (int, error) {
	for {
		if err := ctx.Err(); err != nil {
			return -1, fmt.Errorf("no leader: %w", err)
		}
		for id, node := range nodes {
			if dead[id] {
				continue
			}
			if node.Status().State == raft.Leader {
				return id, nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func awaitApplied(ctx context.Context, kvs []*raft.KVStore, index int, dead map[int]bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("replication incomplete: %w", err)
		}
		done := true
		for id, kv := range kvs {
			if dead[id] {
				continue
			}
			if kv.AppliedIndex() < index {
				done = false
			}
		}
		if done {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func runServer(id int, peers []string, readMode raft.ReadConsistency, lease time.Duration, reg *metrics.Registry) error {
	if len(peers) < 1 || peers[0] == "" {
		return fmt.Errorf("-peers is required in server mode (or use -demo)")
	}
	if readMode == raft.ReadLogCommand {
		return fmt.Errorf("-read-consistency log is a benchmark baseline; server mode serves linearizable, lease, or stale")
	}
	ep, err := transport.Listen(id, peers, transport.WithCodec(wireCodec), transport.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	kv := &raft.KVStore{}
	node, err := startNode(id, ep, kv, uint64(time.Now().UnixNano()), lease, reg)
	if err != nil {
		return err
	}
	node.Start(ctx)
	fmt.Printf("node %d serving on %s; commands: set k v | del k | get k | status | quit (reads: %v)\n",
		id, ep.Addr(), readMode)

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "set", "del":
			cmd := raft.KVCommand{Op: "set"}
			if fields[0] == "del" {
				cmd.Op = "delete"
			}
			if len(fields) < 2 {
				fmt.Println("usage: set k v | del k")
				continue
			}
			cmd.Key = fields[1]
			if len(fields) > 2 {
				cmd.Value = fields[2]
			}
			if idx, err := node.Propose(ctx, cmd); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Printf("proposed at index %d\n", idx)
			}
		case "get":
			if len(fields) < 2 {
				fmt.Println("usage: get k")
				continue
			}
			// Fix the read point first: ReadIndexMode returns only after
			// this node has applied through a confirmed read index (a
			// follower forwards to the leader and waits to catch up), so
			// the local Get below is linearizable. Stale mode skips the
			// coordination and reads whatever is applied locally.
			rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
			_, rerr := node.ReadIndexMode(rctx, readMode)
			rcancel()
			if rerr != nil {
				fmt.Printf("error: %v\n", rerr)
				continue
			}
			if v, ok := kv.Get(fields[1]); ok {
				fmt.Println(v)
			} else {
				fmt.Println("(not found)")
			}
		case "status":
			fmt.Println(node.Status())
		case "quit":
			return nil
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
	return sc.Err()
}
