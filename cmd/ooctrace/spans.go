// Span-dump views: the per-request latency-attribution side of
// ooctrace, reading the rtrace dumps written by raftkv -trace-out.
// Where the trace.json views reconstruct a simulator run round by
// round, these follow one sampled client operation through the real
// request path and say where its latency went: leader queue, fsync,
// replication network, or apply.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"ooc/internal/rtrace"
)

// allPhases is the render order: the request path's causal order.
var allPhases = [...]rtrace.Phase{
	rtrace.PhaseQueue, rtrace.PhaseFsync, rtrace.PhaseNetwork, rtrace.PhaseApply,
}

// parseSpanID accepts the two forms ooctrace itself prints: the
// %016x hex form (with or without an 0x prefix) and plain decimal.
func parseSpanID(s string) (rtrace.ID, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if n, err := strconv.ParseUint(s, 16, 64); err == nil {
		return rtrace.ID(n), nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a span ID (want hex or decimal): %q", s)
	}
	return rtrace.ID(n), nil
}

// spanSummary is one span's one-line accounting — the listing row and
// the -json listing element. Durations JSON-encode as nanoseconds.
type spanSummary struct {
	ID         string        `json:"id"`
	Op         string        `json:"op"`
	Key        string        `json:"key,omitempty"`
	Origin     int           `json:"origin"`
	Err        bool          `json:"err,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Queue      time.Duration `json:"queue_ns"`
	Fsync      time.Duration `json:"fsync_ns"`
	Network    time.Duration `json:"network_ns"`
	Apply      time.Duration `json:"apply_ns"`
	Attributed time.Duration `json:"attributed_ns"`
	Coverage   float64       `json:"coverage"` // attributed / elapsed
}

func summarize(s rtrace.Span) spanSummary {
	sum := spanSummary{
		ID:         fmt.Sprintf("%016x", uint64(s.ID)),
		Op:         s.Op,
		Key:        s.Key,
		Origin:     s.Origin,
		Err:        s.Err,
		Elapsed:    s.Elapsed(),
		Queue:      s.PhaseTotal(rtrace.PhaseQueue),
		Fsync:      s.PhaseTotal(rtrace.PhaseFsync),
		Network:    s.PhaseTotal(rtrace.PhaseNetwork),
		Apply:      s.PhaseTotal(rtrace.PhaseApply),
		Attributed: s.AttributedTotal(),
	}
	if sum.Elapsed > 0 {
		sum.Coverage = float64(sum.Attributed) / float64(sum.Elapsed)
	}
	return sum
}

// requestView is the -request detail: the span's phase intervals as
// offsets from span start, plus the attribution totals. This is the
// shape CI diffs with -json. Overlap is attributed time minus the
// union of the intervals — zero under the sync write path, and the
// wall-clock the pipeline hid by running fsync and network
// concurrently under the pipelined one.
type requestView struct {
	spanSummary
	Start   time.Time       `json:"start"`
	Overlap time.Duration   `json:"overlap_ns"`
	Phases  []phaseInterval `json:"phases"`
}

type phaseInterval struct {
	Phase    string        `json:"phase"`
	Node     int           `json:"node"`
	Offset   time.Duration `json:"offset_ns"` // interval start − span start
	Duration time.Duration `json:"duration_ns"`
	// Width, on a fsync interval, is how many groups' flushes shared
	// the device barrier the interval measures (0/absent = private).
	Width int `json:"width,omitempty"`
}

func viewRequest(s rtrace.Span) requestView {
	v := requestView{spanSummary: summarize(s), Start: s.Start}
	phases := append([]rtrace.PhaseInterval(nil), s.Phases...)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].Start.Before(phases[j].Start) })
	for _, pi := range phases {
		v.Phases = append(v.Phases, phaseInterval{
			Phase:    pi.Phase.String(),
			Node:     pi.Node,
			Offset:   pi.Start.Sub(s.Start),
			Duration: pi.Duration(),
			Width:    pi.Width,
		})
	}
	if u := unionDuration(v.Phases); v.Attributed > u {
		v.Overlap = v.Attributed - u
	}
	return v
}

// unionDuration measures the union of the (sorted-by-offset) intervals:
// wall-clock covered by at least one phase. Attributed minus this is
// the concurrency the pipeline bought.
func unionDuration(phases []phaseInterval) time.Duration {
	var total, curStart, curEnd time.Duration
	open := false
	for _, pi := range phases {
		start, end := pi.Offset, pi.Offset+pi.Duration
		switch {
		case !open:
			curStart, curEnd, open = start, end, true
		case start <= curEnd:
			if end > curEnd {
				curEnd = end
			}
		default:
			total += curEnd - curStart
			curStart, curEnd = start, end
		}
	}
	if open {
		total += curEnd - curStart
	}
	return total
}

// runSpans drives the -spans mode: a listing of every span in the
// dump, or the single-request timeline when -request is given.
func runSpans(path, request string, jsonOut bool) error {
	spans, err := rtrace.ReadSpansFile(path)
	if err != nil {
		return err
	}
	w := os.Stdout
	if request == "" {
		return printSpanList(w, spans, jsonOut)
	}
	id, err := parseSpanID(request)
	if err != nil {
		return err
	}
	for _, s := range spans {
		if s.ID == id {
			return printRequest(w, s, jsonOut)
		}
	}
	return fmt.Errorf("span %016x not in %s (%d spans; run without -request to list)", uint64(id), path, len(spans))
}

func printSpanList(w io.Writer, spans []rtrace.Span, jsonOut bool) error {
	summaries := make([]spanSummary, len(spans))
	for i, s := range spans {
		summaries[i] = summarize(s)
	}
	if jsonOut {
		return writeJSON(w, struct {
			Spans []spanSummary `json:"spans"`
		}{summaries})
	}
	fmt.Fprintf(w, "spans: %d sampled requests\n", len(spans))
	if len(spans) == 0 {
		return nil
	}
	fmt.Fprintf(w, "  %-16s  %-14s  %-10s  %-9s  %-9s  %-9s  %-9s  %-9s  %-5s  %s\n",
		"id", "op", "key", "elapsed", "queue", "fsync", "network", "apply", "cover", "err")
	for _, s := range summaries {
		errMark := ""
		if s.Err {
			errMark = "ERR"
		}
		fmt.Fprintf(w, "  %-16s  %-14s  %-10s  %-9s  %-9s  %-9s  %-9s  %-9s  %4.0f%%  %s\n",
			s.ID, trunc(s.Op, 14), trunc(s.Key, 10), fd(s.Elapsed),
			fd(s.Queue), fd(s.Fsync), fd(s.Network), fd(s.Apply), 100*s.Coverage, errMark)
	}
	fmt.Fprintf(w, "  (detail: ooctrace -spans <file> -request <id>)\n")
	return nil
}

func printRequest(w io.Writer, s rtrace.Span, jsonOut bool) error {
	v := viewRequest(s)
	if jsonOut {
		return writeJSON(w, v)
	}
	fmt.Fprintf(w, "request %s: %s", v.ID, s.Op)
	if s.Key != "" {
		fmt.Fprintf(w, " key=%q", s.Key)
	}
	fmt.Fprintf(w, " origin=node%d", s.Origin)
	if s.Err {
		fmt.Fprintf(w, " (errored)")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  end-to-end %s, attributed %s (%.0f%% coverage)",
		fd(v.Elapsed), fd(v.Attributed), 100*v.Coverage)
	if v.Overlap > 0 {
		fmt.Fprintf(w, ", pipelined overlap %s", fd(v.Overlap))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	// Waterfall: each interval as a bar positioned on the span's
	// timeline. Bars sharing columns are phases running concurrently —
	// under the pipelined write path fsync and network overlap here;
	// under -sync-pipeline the bars tile end to end.
	const waterfallWidth = 48
	fmt.Fprintf(w, "  %-9s  %-10s  %-5s  %-9s  |%-*s|\n",
		"offset", "phase", "node", "duration", waterfallWidth, timeAxis(v.Elapsed, waterfallWidth))
	shared := 0
	for _, pi := range v.Phases {
		label := pi.Phase
		if pi.Width > 1 {
			label = fmt.Sprintf("%s ×%d", pi.Phase, pi.Width)
			if pi.Width > shared {
				shared = pi.Width
			}
		}
		fmt.Fprintf(w, "  +%-8s  %-10s  %-5d  %-9s  |%s|\n",
			fd(pi.Offset), label, pi.Node, fd(pi.Duration),
			timelineBar(pi.Offset, pi.Duration, v.Elapsed, waterfallWidth))
	}
	if shared > 1 {
		fmt.Fprintf(w, "  note: fsync ×N marks a SHARED device barrier — N groups' flushes\n")
		fmt.Fprintf(w, "  coalesced into the one flush this request waited on, so the\n")
		fmt.Fprintf(w, "  interval's device cost was split N ways (cf. pipelined overlap).\n")
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "  %-8s  %-9s  %s\n", "phase", "total", "share of e2e")
	totals := [...]time.Duration{v.Queue, v.Fsync, v.Network, v.Apply}
	for i, p := range allPhases {
		share := 0.0
		if v.Elapsed > 0 {
			share = float64(totals[i]) / float64(v.Elapsed)
		}
		fmt.Fprintf(w, "  %-8s  %-9s  %4.0f%%  %s\n", p, fd(totals[i]), 100*share, bar(share, 32))
	}
	unattributed := v.Elapsed - v.Attributed
	if unattributed < 0 {
		unattributed = 0
	}
	share := 0.0
	if v.Elapsed > 0 {
		share = float64(unattributed) / float64(v.Elapsed)
	}
	fmt.Fprintf(w, "  %-8s  %-9s  %4.0f%%  %s\n", "(other)", fd(unattributed), 100*share, bar(share, 32))
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}

// fd renders a duration at microsecond grain — the scale request
// phases live at; columns stay aligned without drowning in digits.
func fd(d time.Duration) string { return d.Round(time.Microsecond).String() }

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// timelineBar positions an interval on a width-column timeline spanning
// [0, elapsed]: spaces up to the interval's start column, then '#' fill.
// Non-empty intervals render at least one cell so microsecond phases
// stay visible next to millisecond ones.
func timelineBar(offset, dur, elapsed time.Duration, width int) string {
	if elapsed <= 0 {
		return fmt.Sprintf("%*s", width, "")
	}
	start := int(float64(offset) / float64(elapsed) * float64(width))
	end := int(float64(offset+dur) / float64(elapsed) * float64(width))
	if start < 0 {
		start = 0
	}
	if start > width-1 {
		start = width - 1
	}
	if dur > 0 && end <= start {
		end = start + 1
	}
	if end > width {
		end = width
	}
	out := make([]byte, width)
	for i := range out {
		if i >= start && i < end {
			out[i] = '#'
		} else {
			out[i] = ' '
		}
	}
	return string(out)
}

// timeAxis labels the waterfall header with the span's full extent.
func timeAxis(elapsed time.Duration, width int) string {
	label := "0s " + barRule(width-len("0s ")-len(fd(elapsed))-1) + " " + fd(elapsed)
	if len(label) > width {
		return fd(elapsed)
	}
	return label
}

func barRule(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '-'
	}
	return string(out)
}

func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
