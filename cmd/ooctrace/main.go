// Command ooctrace inspects a recorded trace file (written by
// oocsim -trace-out, or any trace.WriteJSON caller): it prints the run's
// shape — per-round and per-node timelines, round-latency percentiles,
// and a breakdown of what the agreement detectors returned each round.
//
// Usage:
//
//	ooctrace run.trace.json              # all sections
//	ooctrace -rounds=false run.trace.json
//	ooctrace -node 2 run.trace.json      # one processor's event timeline
//	ooctrace -round 3 run.trace.json     # one round's events, all nodes
//
// Traces recorded with a timed recorder (oocsim -trace-out does this)
// carry per-event wall-clock offsets and yield real latencies; untimed
// traces fall back to sequence-number spans, which still order rounds
// but measure "events elapsed" rather than time.
//
// It also reads the per-request span dumps raftkv -trace-out writes
// (rtrace format, DESIGN §3.6) and renders where each sampled
// request's latency went — leader queue, fsync, replication, apply:
//
//	ooctrace -spans spans.json                   # one line per request
//	ooctrace -spans spans.json -request <id>     # one request's timeline
//	ooctrace -spans spans.json -request <id> -json  # same view, diffable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ooc/internal/msgnet"
	"ooc/internal/trace"
)

func main() {
	var (
		rounds   = flag.Bool("rounds", true, "print the per-round table and latency percentiles")
		nodes    = flag.Bool("nodes", true, "print the per-node summary table")
		outcomes = flag.Bool("outcomes", true, "print the detector-outcome breakdown")
		shards   = flag.Bool("shards", true, "print the per-mux-channel traffic table (multi-shard traces)")
		node     = flag.Int("node", -1, "print one processor's full event timeline")
		round    = flag.Int("round", -1, "print one round's events across all processors")
		channel  = flag.String("channel", "", "print one mux channel's event timeline (e.g. shard/2)")
		spans    = flag.String("spans", "", "read a per-request span dump (raftkv -trace-out) instead of a trace file")
		request  = flag.String("request", "", "with -spans: print one request's phase timeline (hex or decimal span ID)")
		jsonOut  = flag.Bool("json", false, "with -spans: emit the view as JSON for diffing")
	)
	flag.Parse()
	if *spans != "" {
		if err := runSpans(*spans, *request, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ooctrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ooctrace [flags] trace.json  |  ooctrace -spans spans.json [-request id] [-json]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ooctrace: %v\n", err)
		os.Exit(1)
	}
	tr, err := trace.ReadJSON(f)
	_ = f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ooctrace: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	printHeader(w, tr)
	if *outcomes {
		printOutcomes(w, tr)
	}
	if *rounds {
		printRounds(w, tr)
	}
	if *nodes {
		printNodes(w, tr)
	}
	if *shards {
		printChannels(w, tr)
	}
	if *node >= 0 {
		printTimeline(w, tr, func(ev trace.Event) bool { return ev.Node == *node },
			fmt.Sprintf("timeline of node %d", *node))
	}
	if *round >= 0 {
		printTimeline(w, tr, func(ev trace.Event) bool { return ev.Round == *round },
			fmt.Sprintf("events of round %d", *round))
	}
	if *channel != "" {
		printTimeline(w, tr, func(ev trace.Event) bool {
			ch, ok := channelOf(ev.Value)
			return ok && ch == *channel
		}, fmt.Sprintf("timeline of channel %s", *channel))
	}
}

// channelOf reports the mux channel an event's payload traveled on, if
// any. A live payload is still the mux wire wrapper, which ChannelOf
// unwraps; a JSON-decoded trace carries its fmt.Sprint form,
// "{<channel> <inner>}", so the first token is the channel name — taken
// only when it contains a "/" (the channel-naming idiom, e.g. shard/3),
// which no struct-field rendering starts with.
func channelOf(v any) (string, bool) {
	if ch, ok := msgnet.ChannelOf(v); ok {
		return ch, true
	}
	s, ok := v.(string)
	if !ok || !strings.HasPrefix(s, "{") {
		return "", false
	}
	tok, _, found := strings.Cut(strings.TrimPrefix(s, "{"), " ")
	if !found || !strings.Contains(tok, "/") {
		return "", false
	}
	return tok, true
}

// parseFsyncNote parses a storage durability annotation — "fsync
// <channel> entries=E width=W", emitted per flush when the shard layer
// runs with a Recorder (shard.Config.Recorder) — into its parts.
func parseFsyncNote(v any) (ch string, entries, width int, ok bool) {
	s, isStr := v.(string)
	if !isStr || !strings.HasPrefix(s, "fsync ") {
		return "", 0, 0, false
	}
	if _, err := fmt.Sscanf(s, "fsync %s entries=%d width=%d", &ch, &entries, &width); err != nil {
		return "", 0, 0, false
	}
	return ch, entries, width, true
}

// printChannels renders the per-mux-channel traffic table — for a
// multi-shard trace, one row per consensus group. Traces with no
// channel-tagged traffic (single-group runs) print nothing. Traces
// carrying fsync notes also get the per-shard durability columns:
// fsyncs (flushes across the shard's replicas), fs/op (flushes per
// committed entry, approximating ops by the busiest replica's appended
// entries — the leader appends every committed entry exactly once), and
// width (mean groups per covering device barrier; > 1.00 means the
// shard's flushes rode barriers shared with other groups).
func printChannels(w io.Writer, tr trace.Trace) {
	type tally struct {
		sends, delivers, drops int
		bytes                  int
		nodes                  map[int]bool
		fsyncs                 int
		widthSum               int
		entries                map[int]int // appended entries per node
	}
	byChannel := map[string]*tally{}
	get := func(ch string) *tally {
		t := byChannel[ch]
		if t == nil {
			t = &tally{nodes: map[int]bool{}, entries: map[int]int{}}
			byChannel[ch] = t
		}
		return t
	}
	hasFsync := false
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindNote {
			if ch, entries, width, ok := parseFsyncNote(ev.Value); ok {
				t := get(ch)
				t.fsyncs++
				t.widthSum += width
				t.entries[ev.Node] += entries
				hasFsync = true
			}
			continue
		}
		ch, ok := channelOf(ev.Value)
		if !ok {
			continue
		}
		t := get(ch)
		t.nodes[ev.Node] = true
		switch ev.Kind {
		case trace.KindSend:
			t.sends++
			t.bytes += ev.Bytes
		case trace.KindDeliver:
			t.delivers++
		case trace.KindDrop:
			t.drops++
		}
	}
	if len(byChannel) == 0 {
		return
	}
	names := make([]string, 0, len(byChannel))
	for ch := range byChannel {
		names = append(names, ch)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "mux channels (one consensus group per channel in a multi-shard trace)")
	if !hasFsync {
		fmt.Fprintf(w, "  %-12s  %-6s  %-8s  %-6s  %-10s  %s\n", "channel", "sends", "delivers", "drops", "bytes", "nodes")
		for _, ch := range names {
			t := byChannel[ch]
			fmt.Fprintf(w, "  %-12s  %-6d  %-8d  %-6d  %-10d  %d\n", ch, t.sends, t.delivers, t.drops, t.bytes, len(t.nodes))
		}
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "  %-12s  %-6s  %-8s  %-6s  %-10s  %-5s  %-7s  %-6s  %s\n",
		"channel", "sends", "delivers", "drops", "bytes", "nodes", "fsyncs", "fs/op", "width")
	for _, ch := range names {
		t := byChannel[ch]
		ops := 0
		for _, n := range t.entries {
			if n > ops {
				ops = n
			}
		}
		fsPerOp, meanWidth := "-", "-"
		if ops > 0 {
			fsPerOp = fmt.Sprintf("%.2f", float64(t.fsyncs)/float64(ops))
		}
		if t.fsyncs > 0 {
			meanWidth = fmt.Sprintf("%.2f", float64(t.widthSum)/float64(t.fsyncs))
		}
		fmt.Fprintf(w, "  %-12s  %-6d  %-8d  %-6d  %-10d  %-5d  %-7d  %-6s  %s\n",
			ch, t.sends, t.delivers, t.drops, t.bytes, len(t.nodes), t.fsyncs, fsPerOp, meanWidth)
	}
	fmt.Fprintln(w, "  (fsyncs: per-replica durability flushes; fs/op approximates ops by the busiest replica's appended entries; width: mean groups per covering device barrier)")
	fmt.Fprintln(w)
}

// timed reports whether the trace carries wall-clock offsets (a plain
// recorder leaves every Time zero).
func timed(tr trace.Trace) bool {
	for _, ev := range tr.Events {
		if ev.Time != 0 {
			return true
		}
	}
	return false
}

func printHeader(w io.Writer, tr trace.Trace) {
	s := trace.Summarize(tr)
	span := "untimed (sequence order only)"
	if timed(tr) {
		var max time.Duration
		for _, ev := range tr.Events {
			if ev.Time > max {
				max = ev.Time
			}
		}
		span = max.Round(time.Microsecond).String()
	}
	nodes := map[int]bool{}
	for _, ev := range tr.Events {
		nodes[ev.Node] = true
	}
	fmt.Fprintf(w, "trace: %d events, %d nodes, %d rounds, span %s\n",
		len(tr.Events), len(nodes), s.MaxRound, span)
	fmt.Fprintf(w, "stats: %v\n\n", s)
}

// parseOutcome extracts the confidence from a detector return payload.
// Decoded traces carry stringified values: a template detector return is
// "[<confidence> <value>]" (the fmt.Sprint of [2]any{Confidence, v}).
func parseOutcome(v any) (string, bool) {
	s, ok := v.(string)
	if !ok || !strings.HasPrefix(s, "[") {
		return "", false
	}
	conf, _, _ := strings.Cut(strings.TrimPrefix(s, "["), " ")
	switch conf {
	case "vacillate", "adopt", "commit":
		return conf, true
	}
	return "", false
}

// printOutcomes renders, per detector object and round, how many
// processors returned each confidence level — the run's convergence
// story at a glance.
func printOutcomes(w io.Writer, tr trace.Trace) {
	type key struct {
		object string
		round  int
	}
	counts := map[key]map[string]int{}
	objects := map[string]bool{}
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindReturn {
			continue
		}
		conf, ok := parseOutcome(ev.Value)
		if !ok {
			continue
		}
		k := key{ev.Object, ev.Round}
		if counts[k] == nil {
			counts[k] = map[string]int{}
		}
		counts[k][conf]++
		objects[ev.Object] = true
	}
	if len(counts) == 0 {
		fmt.Fprintf(w, "detector outcomes: none recorded (no detector returns in trace)\n\n")
		return
	}
	names := make([]string, 0, len(objects))
	for o := range objects {
		names = append(names, o)
	}
	sort.Strings(names)
	for _, object := range names {
		fmt.Fprintf(w, "detector outcomes: %s\n", object)
		fmt.Fprintf(w, "  %-6s  %-9s  %-6s  %-6s\n", "round", "vacillate", "adopt", "commit")
		var rounds []int
		for k := range counts {
			if k.object == object {
				rounds = append(rounds, k.round)
			}
		}
		sort.Ints(rounds)
		for _, r := range rounds {
			c := counts[key{object, r}]
			fmt.Fprintf(w, "  %-6d  %-9d  %-6d  %-6d\n", r, c["vacillate"], c["adopt"], c["commit"])
		}
		fmt.Fprintln(w)
	}
}

// roundSpan is one round's extent, in wall-clock offsets when the trace
// is timed and in sequence numbers otherwise.
type roundSpan struct {
	round      int
	events     int
	start, end int64
}

func (rs roundSpan) width() int64 { return rs.end - rs.start }

// printRounds renders per-round event counts and spans, then the
// round-latency percentiles.
func printRounds(w io.Writer, tr trace.Trace) {
	hasTime := timed(tr)
	spans := map[int]*roundSpan{}
	for _, ev := range tr.Events {
		if ev.Round == 0 {
			continue // unattributed events (network noise, crashes)
		}
		v := int64(ev.Seq)
		if hasTime {
			v = int64(ev.Time)
		}
		rs, ok := spans[ev.Round]
		if !ok {
			spans[ev.Round] = &roundSpan{round: ev.Round, events: 1, start: v, end: v}
			continue
		}
		rs.events++
		if v < rs.start {
			rs.start = v
		}
		if v > rs.end {
			rs.end = v
		}
	}
	if len(spans) == 0 {
		fmt.Fprintf(w, "rounds: no round-attributed events\n\n")
		return
	}
	unit := "seq-span"
	if hasTime {
		unit = "latency"
	}
	rounds := make([]int, 0, len(spans))
	for r := range spans {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	fmt.Fprintf(w, "rounds (%s per round)\n", unit)
	fmt.Fprintf(w, "  %-6s  %-7s  %s\n", "round", "events", unit)
	widths := make([]int64, 0, len(rounds))
	for _, r := range rounds {
		rs := spans[r]
		widths = append(widths, rs.width())
		fmt.Fprintf(w, "  %-6d  %-7d  %s\n", r, rs.events, formatSpan(rs.width(), hasTime))
	}
	sort.Slice(widths, func(i, j int) bool { return widths[i] < widths[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(widths)-1))
		return widths[idx]
	}
	fmt.Fprintf(w, "  %s percentiles: p50=%s p90=%s p99=%s max=%s\n\n", unit,
		formatSpan(pct(0.50), hasTime), formatSpan(pct(0.90), hasTime),
		formatSpan(pct(0.99), hasTime), formatSpan(widths[len(widths)-1], hasTime))
}

func formatSpan(v int64, hasTime bool) string {
	if hasTime {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprint(v)
}

// printNodes renders one line per processor: what it did and where it
// ended up.
func printNodes(w io.Writer, tr trace.Trace) {
	byNode := trace.ByNode(tr)
	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintln(w, "nodes")
	fmt.Fprintf(w, "  %-5s  %-7s  %-6s  %-6s  %-8s  %-8s  %s\n",
		"node", "events", "sends", "recvs", "invokes", "crashed", "decided")
	for _, id := range ids {
		evs := byNode[id]
		var sends, recvs, invokes int
		crashed := false
		decided := "-"
		for _, ev := range evs {
			switch ev.Kind {
			case trace.KindSend:
				sends++
			case trace.KindDeliver:
				recvs++
			case trace.KindInvoke:
				invokes++
			case trace.KindCrash:
				crashed = true
			case trace.KindDecide:
				decided = fmt.Sprintf("round %d (%v)", ev.Round, ev.Value)
			}
		}
		fmt.Fprintf(w, "  %-5d  %-7d  %-6d  %-6d  %-8d  %-8v  %s\n",
			id, len(evs), sends, recvs, invokes, crashed, decided)
	}
	fmt.Fprintln(w)
}

// printTimeline dumps the matching events in sequence order.
func printTimeline(w io.Writer, tr trace.Trace, match func(trace.Event) bool, title string) {
	fmt.Fprintln(w, title)
	hasTime := timed(tr)
	for _, ev := range tr.Events {
		if !match(ev) {
			continue
		}
		if hasTime {
			fmt.Fprintf(w, "  %12s  %s\n", ev.Time.Round(time.Microsecond), trace.FormatEvent(ev))
		} else {
			fmt.Fprintf(w, "  %s\n", trace.FormatEvent(ev))
		}
	}
	fmt.Fprintln(w)
}
