// Command oocsim runs one consensus configuration on the in-memory
// simulator and prints every processor's decision plus run statistics.
//
// Usage:
//
//	oocsim -protocol benor -n 5 -crashes 2 -split half -seed 7
//	oocsim -protocol phaseking -n 7 -byzantine 2 -adversary equivocate
//	oocsim -protocol raft -n 5 -crash-leader
//	oocsim -protocol multivalue -n 7 -crashes 2
//	oocsim -protocol sharedmem -n 8 -split half
//
// Pass -dump to print the full message-level trace after the run,
// -trace-out FILE to save it as a timestamped JSON trace file (which
// cmd/ooctrace can inspect), and -telemetry ADDR to serve /metrics and
// /debug/pprof while the run executes (the final metrics snapshot is
// also printed on exit).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"ooc/internal/benor"
	"ooc/internal/core"
	"ooc/internal/metrics"
	"ooc/internal/multivalue"
	"ooc/internal/netsim"
	"ooc/internal/phaseking"
	"ooc/internal/raft"
	"ooc/internal/sharedmem"
	"ooc/internal/sim"
	"ooc/internal/trace"
	"ooc/internal/workload"
)

func main() {
	var (
		protocol    = flag.String("protocol", "benor", "benor | phaseking | raft | multivalue | sharedmem")
		n           = flag.Int("n", 5, "number of processors")
		seed        = flag.Uint64("seed", 1, "random seed")
		split       = flag.String("split", "half", "unanimous0 | unanimous1 | half | dissent | random")
		crashes     = flag.Int("crashes", 0, "benor: processors to crash")
		byzantine   = flag.Int("byzantine", 0, "phaseking: Byzantine processor count")
		adversary   = flag.String("adversary", "silent", "phaseking: silent | equivocate | garbage | random")
		rule        = flag.String("rule", "final", "phaseking: first | final decision rule")
		crashLeader = flag.Bool("crash-leader", false, "raft: crash the first elected leader")
		maxRounds   = flag.Int("max-rounds", 2000, "round bound for the asynchronous protocols")
		dump        = flag.Bool("dump", false, "print the message-level trace after the run")
		traceOut    = flag.String("trace-out", "", "write the trace as a timestamped JSON file (inspect with ooctrace)")
		telemetry   = flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address during the run")
	)
	flag.Parse()
	dumpTrace = *dump
	traceOutPath = *traceOut
	if *telemetry != "" {
		metReg = metrics.NewRegistry()
		srv, err := metrics.Serve(*telemetry, metReg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oocsim: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr)
	}
	if err := run(*protocol, *n, *seed, *split, *crashes, *byzantine, *adversary, *rule, *crashLeader, *maxRounds); err != nil {
		fmt.Fprintf(os.Stderr, "oocsim: %v\n", err)
		os.Exit(1)
	}
	if metReg != nil {
		fmt.Println("metrics:")
		if err := metReg.Snapshot().WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		}
	}
	if traceOutFailed {
		os.Exit(1)
	}
}

// dumpTrace controls whether runs print their full trace; traceOutPath,
// when set, saves the trace as a JSON file; metReg, when non-nil,
// receives every run's telemetry.
var (
	dumpTrace      bool
	traceOutPath   string
	traceOutFailed bool
	metReg         *metrics.Registry
)

// newRecorder builds the run's recorder: timestamped when the trace is
// being saved for timeline inspection, plain (cheaper) otherwise.
func newRecorder() *trace.Recorder {
	if traceOutPath != "" {
		return trace.NewTimedRecorder()
	}
	return trace.NewRecorder()
}

// finishTrace prints stats and, with -dump, the event log; with
// -trace-out it also saves the JSON trace file.
func finishTrace(rec *trace.Recorder) {
	tr := rec.Snapshot()
	fmt.Printf("stats: %v\n", trace.Summarize(tr))
	if dumpTrace {
		fmt.Println("trace:")
		if err := trace.Dump(os.Stdout, tr); err != nil {
			fmt.Fprintf(os.Stderr, "dump: %v\n", err)
		}
	}
	if traceOutPath != "" {
		f, err := os.Create(traceOutPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			traceOutFailed = true
			return
		}
		defer f.Close()
		if err := trace.WriteJSON(f, tr); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			traceOutFailed = true
			return
		}
		fmt.Printf("trace saved to %s (%d events)\n", traceOutPath, len(tr.Events))
	}
}

func parseSplit(s string) (workload.Split, error) {
	switch s {
	case "unanimous0":
		return workload.SplitUnanimous0, nil
	case "unanimous1":
		return workload.SplitUnanimous1, nil
	case "half":
		return workload.SplitHalf, nil
	case "dissent":
		return workload.SplitOneDissent, nil
	case "random":
		return workload.SplitRandom, nil
	default:
		return 0, fmt.Errorf("unknown split %q", s)
	}
}

func run(protocol string, n int, seed uint64, splitName string, crashes, byzantine int, adversary, rule string, crashLeader bool, maxRounds int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	switch protocol {
	case "benor":
		return runBenOr(ctx, n, seed, splitName, crashes, maxRounds)
	case "phaseking":
		return runPhaseKing(ctx, n, seed, splitName, byzantine, adversary, rule)
	case "raft":
		return runRaft(ctx, n, seed, crashLeader)
	case "multivalue":
		return runMultivalue(ctx, n, seed, crashes, maxRounds)
	case "sharedmem":
		return runSharedMem(ctx, n, seed, splitName, maxRounds)
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
}

func runBenOr(ctx context.Context, n int, seed uint64, splitName string, crashes, maxRounds int) error {
	split, err := parseSplit(splitName)
	if err != nil {
		return err
	}
	tFaults := (n - 1) / 2
	if crashes > tFaults {
		return fmt.Errorf("%d crashes exceed tolerance t=%d", crashes, tFaults)
	}
	rec := newRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec), netsim.WithMetrics(metReg))
	rng := sim.NewRNG(seed)
	inputs := workload.BinaryInputs(split, n, rng)
	for _, spec := range workload.CrashPlan(n, crashes, rng) {
		if spec.AfterSends == 0 {
			nw.Crash(spec.Node)
		} else {
			nw.CrashAfterSends(spec.Node, spec.AfterSends)
		}
		fmt.Printf("injecting crash: node %d after %d sends\n", spec.Node, spec.AfterSends)
	}
	type out struct {
		d   core.Decision[int]
		err error
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := benor.RunDecomposed(ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(maxRounds), core.WithRecorder(rec, id), core.WithMetrics(metReg))
			outs[id] = out{d, err}
		}(id)
	}
	wg.Wait()
	fmt.Printf("ben-or: n=%d t=%d split=%v inputs=%v\n", n, tFaults, split, inputs)
	for id, o := range outs {
		if o.err != nil {
			fmt.Printf("  p%d: error: %v\n", id, o.err)
			continue
		}
		fmt.Printf("  p%d: decided %d in round %d\n", id, o.d.Value, o.d.Round)
	}
	finishTrace(rec)
	return nil
}

func runPhaseKing(ctx context.Context, n int, seed uint64, splitName string, byzantine int, adversary, rule string) error {
	split, err := parseSplit(splitName)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(seed)
	inputs := workload.BinaryInputs(split, n, rng)
	byz := map[int]phaseking.Adversary{}
	for id := 0; id < byzantine; id++ {
		switch adversary {
		case "silent":
			byz[id] = phaseking.SilentAdversary{}
		case "equivocate":
			byz[id] = phaseking.EquivocateAdversary{}
		case "garbage":
			byz[id] = phaseking.GarbageAdversary{}
		case "random":
			byz[id] = &phaseking.RandomAdversary{RNG: rng.Fork(uint64(id))}
		default:
			return fmt.Errorf("unknown adversary %q", adversary)
		}
	}
	decRule := phaseking.RuleFinalValue
	if rule == "first" {
		decRule = phaseking.RuleFirstCommit
	}
	rec := newRecorder()
	byzIDs := make([]int, 0, len(byz))
	for id := range byz {
		byzIDs = append(byzIDs, id)
	}
	cfg := phaseking.Config{
		N: n, T: (n - 1) / 3,
		Inputs:    workload.InputsToMap(inputs, byzIDs...),
		Byzantine: byz,
		Rule:      decRule,
		Recorder:  rec,
		Metrics:   metReg,
	}
	res, err := phaseking.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("phase-king: n=%d t=%d byzantine=%d adversary=%s rule=%s inputs=%v\n",
		n, cfg.T, byzantine, adversary, rule, inputs)
	ids := make([]int, 0, len(res.Decisions))
	for id := range res.Decisions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := res.Decisions[id]
		fmt.Printf("  p%d: decided %d in round %d\n", id, d.Value, d.Round)
	}
	for id, err := range res.Errs {
		fmt.Printf("  p%d: error: %v\n", id, err)
	}
	fmt.Printf("agreement: %v\n", res.AgreementHolds())
	finishTrace(rec)
	return nil
}

func runRaft(ctx context.Context, n int, seed uint64, crashLeader bool) error {
	rec := newRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec), netsim.WithMetrics(metReg))
	rng := sim.NewRNG(seed)
	cns := make([]*raft.ConsensusNode, n)
	for id := 0; id < n; id++ {
		cn, err := raft.NewConsensusNode(raft.Config{
			ID:                id,
			Endpoint:          nw.Node(id),
			RNG:               rng.Fork(uint64(id)),
			ElectionTimeout:   50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			Metrics:           metReg,
		}, fmt.Sprintf("value-of-p%d", id))
		if err != nil {
			return err
		}
		cns[id] = cn
	}
	if crashLeader {
		go func() {
			for ctx.Err() == nil {
				for id := range cns {
					if cns[id].Node().Status().State == raft.Leader {
						fmt.Printf("injecting crash of leader p%d\n", id)
						nw.Crash(id)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	results := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = cns[id].Run(ctx)
		}(id)
	}
	wg.Wait()
	fmt.Printf("raft single-decree: n=%d crash-leader=%v elapsed=%v\n", n, crashLeader, time.Since(start).Round(time.Millisecond))
	for id := range cns {
		if errs[id] != nil {
			fmt.Printf("  p%d: error: %v (crashed=%v)\n", id, errs[id], nw.Crashed(id))
			continue
		}
		fmt.Printf("  p%d: decided %v (term %d)\n", id, results[id], cns[id].Node().Status().Term)
	}
	finishTrace(rec)
	return nil
}

func runMultivalue(ctx context.Context, n int, seed uint64, crashes, maxRounds int) error {
	tFaults := (n - 1) / 2
	if crashes > tFaults {
		return fmt.Errorf("%d crashes exceed tolerance t=%d", crashes, tFaults)
	}
	rec := newRecorder()
	nw := netsim.New(n, netsim.WithSeed(seed), netsim.WithRecorder(rec), netsim.WithMetrics(metReg))
	rng := sim.NewRNG(seed)
	inputs := make([]string, n)
	for id := range inputs {
		inputs[id] = fmt.Sprintf("candidate-%d", id)
	}
	for _, spec := range workload.CrashPlan(n, crashes, rng) {
		if spec.AfterSends == 0 {
			nw.Crash(spec.Node)
		} else {
			nw.CrashAfterSends(spec.Node, spec.AfterSends)
		}
		fmt.Printf("injecting crash: node %d after %d sends\n", spec.Node, spec.AfterSends)
	}
	type out struct {
		d   core.Decision[string]
		err error
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := multivalue.RunDecomposed[string](ctx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
				core.WithMaxRounds(maxRounds*10), core.WithRecorder(rec, id), core.WithMetrics(metReg))
			outs[id] = out{d, err}
		}(id)
	}
	wg.Wait()
	fmt.Printf("multivalue: n=%d t=%d inputs=%v\n", n, tFaults, inputs)
	for id, o := range outs {
		if o.err != nil {
			fmt.Printf("  p%d: error: %v\n", id, o.err)
			continue
		}
		fmt.Printf("  p%d: decided %q in round %d\n", id, o.d.Value, o.d.Round)
	}
	finishTrace(rec)
	return nil
}

func runSharedMem(ctx context.Context, n int, seed uint64, splitName string, maxRounds int) error {
	split, err := parseSplit(splitName)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(seed)
	inputs := workload.BinaryInputs(split, n, rng)
	cons := sharedmem.NewConsensus(n)
	type out struct {
		d   core.Decision[int]
		err error
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d, err := cons.Run(ctx, id, rng.Fork(uint64(id)), inputs[id], core.WithMaxRounds(maxRounds*10))
			outs[id] = out{d, err}
		}(id)
	}
	wg.Wait()
	fmt.Printf("shared-memory: n=%d split=%v inputs=%v\n", n, split, inputs)
	for id, o := range outs {
		if o.err != nil {
			fmt.Printf("  p%d: error: %v\n", id, o.err)
			continue
		}
		fmt.Printf("  p%d: decided %d in round %d\n", id, o.d.Value, o.d.Round)
	}
	return nil
}
