// Command oocexplore sweeps a protocol's schedule space: it runs many
// seeded trials in parallel (each seed fixes the adversarial delivery
// order, input split, and crash timing) and reports aggregated safety
// results. A randomized stand-in for model checking.
//
// Usage:
//
//	oocexplore -protocol benor -n 5 -seeds 500
//	oocexplore -protocol multivalue -n 7 -seeds 200 -parallelism 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ooc/internal/benor"
	"ooc/internal/checker"
	"ooc/internal/core"
	"ooc/internal/explore"
	"ooc/internal/multivalue"
	"ooc/internal/netsim"
	"ooc/internal/sim"
	"ooc/internal/workload"
)

func main() {
	var (
		protocol    = flag.String("protocol", "benor", "benor | multivalue")
		n           = flag.Int("n", 5, "number of processors")
		seeds       = flag.Int("seeds", 200, "number of seeded schedules to explore")
		firstSeed   = flag.Uint64("first-seed", 0, "first seed of the range")
		parallelism = flag.Int("parallelism", 0, "concurrent trials (0 = GOMAXPROCS)")
		stopEarly   = flag.Bool("stop-on-violation", true, "abort at the first violated schedule")
	)
	flag.Parse()
	if err := run(*protocol, *n, *seeds, *firstSeed, *parallelism, *stopEarly); err != nil {
		fmt.Fprintf(os.Stderr, "oocexplore: %v\n", err)
		os.Exit(1)
	}
}

func run(protocol string, n, seeds int, firstSeed uint64, parallelism int, stopEarly bool) error {
	var scenario explore.Scenario
	switch protocol {
	case "benor":
		scenario = benOrScenario(n)
	case "multivalue":
		scenario = multivalueScenario(n)
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
	start := time.Now()
	rep, err := explore.Sweep(context.Background(), scenario, explore.Options{
		Seeds:           seeds,
		FirstSeed:       firstSeed,
		Parallelism:     parallelism,
		StopOnViolation: stopEarly,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s n=%d: explored %d schedules in %v: %v\n",
		protocol, n, rep.Runs, time.Since(start).Round(time.Millisecond), rep.String())
	for i, v := range rep.Violations {
		fmt.Printf("  violation %d: %v\n", i+1, v)
		if i == 9 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-10)
			break
		}
	}
	if !rep.Ok() {
		return fmt.Errorf("%d safety violations", len(rep.Violations))
	}
	return nil
}

// benOrScenario: seeded Ben-Or with random split and a seed-derived crash
// plan.
func benOrScenario(n int) explore.Scenario {
	tFaults := (n - 1) / 2
	return func(ctx context.Context, seed uint64) checker.Report {
		rng := sim.NewRNG(seed)
		inputs := workload.BinaryInputs(workload.SplitRandom, n, rng)
		crashes := workload.CrashPlan(n, int(seed)%(tFaults+1), rng)
		nw := netsim.New(n, netsim.WithSeed(seed))
		crashed := map[int]bool{}
		for _, c := range crashes {
			crashed[c.Node] = true
			if c.AfterSends == 0 {
				nw.Crash(c.Node)
			} else {
				nw.CrashAfterSends(c.Node, c.AfterSends)
			}
		}
		runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		defer cancel()
		results := make([]checker.RunOutcome[int], n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				d, err := benor.RunDecomposed(runCtx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
					core.WithMaxRounds(5000))
				if err == nil {
					results[id] = checker.RunOutcome[int]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
				} else {
					results[id] = checker.RunOutcome[int]{Node: id}
				}
			}(id)
		}
		wg.Wait()
		var live []checker.RunOutcome[int]
		for _, o := range results {
			if !crashed[o.Node] {
				live = append(live, o)
			}
		}
		return checker.CheckConsensus(live, workload.InputsToMap(inputs), len(crashes) == 0)
	}
}

// multivalueScenario: seeded multivalued consensus over a 3-value domain.
func multivalueScenario(n int) explore.Scenario {
	tFaults := (n - 1) / 2
	return func(ctx context.Context, seed uint64) checker.Report {
		rng := sim.NewRNG(seed)
		inputs := make([]string, n)
		inputMap := make(map[int]string, n)
		for id := range inputs {
			inputs[id] = fmt.Sprintf("v%d", rng.Intn(3))
			inputMap[id] = inputs[id]
		}
		nw := netsim.New(n, netsim.WithSeed(seed))
		runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		defer cancel()
		results := make([]checker.RunOutcome[string], n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				d, err := multivalue.RunDecomposed[string](runCtx, nw.Node(id), rng.Fork(uint64(id)), tFaults, inputs[id],
					core.WithMaxRounds(20000))
				if err == nil {
					results[id] = checker.RunOutcome[string]{Node: id, Decided: true, Value: d.Value, Round: d.Round}
				} else {
					results[id] = checker.RunOutcome[string]{Node: id}
				}
			}(id)
		}
		wg.Wait()
		return checker.CheckConsensus(results, inputMap, true)
	}
}
