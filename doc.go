// Package ooc is a from-scratch Go reproduction of "Brief Announcement:
// Object Oriented Consensus" (Afek, Aspnes, Cohen, Vainstein, PODC 2017):
// the vacillate-adopt-commit / reconciliator framework for decomposing
// consensus algorithms, with full implementations of the three protocols
// the paper decomposes — Ben-Or's randomized consensus, the Phase-King
// Byzantine protocol, and Raft — over both an in-memory simulated network
// and a real TCP transport.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results. The root package holds the
// benchmark harness entry points (bench_test.go); the implementation
// lives under internal/.
package ooc
